"""Tests for repro.experiments.solver_overhead."""

import pytest

from repro.experiments.solver_overhead import (
    OverheadStats,
    fitted_models_for_scenario,
    run_solver_overhead,
)


class TestFittedModels:
    def test_scenario_models_cover_cluster(self):
        models = fitted_models_for_scenario(size=16384, num_machines=2)
        assert set(models) == {"A.cpu", "A.gpu0", "B.cpu", "B.gpu0"}

    def test_models_usable_by_solver(self):
        from repro.solver import solve_block_partition

        models = fitted_models_for_scenario(size=16384, num_machines=2)
        result = solve_block_partition(models, 2000.0)
        assert result.units.sum() == pytest.approx(2000.0, rel=1e-6)

    def test_probe_ladder_scaled_by_speed(self):
        models = fitted_models_for_scenario(size=16384, num_machines=2)
        # the GPU was probed over a wider range than the CPU
        assert models["A.gpu0"].x_max > models["B.cpu"].x_max


class TestRunSolverOverhead:
    def test_stats_contract(self):
        stats = run_solver_overhead(repetitions=4, size=16384, num_machines=2)
        assert isinstance(stats, OverheadStats)
        assert stats.samples == 4
        assert stats.mean_ms > 0
        assert stats.std_ms >= 0
        assert stats.method in ("ipm", "waterfill", "proportional")

    def test_custom_quantum(self):
        stats = run_solver_overhead(
            repetitions=2, quantum=512.0, size=16384, num_machines=2
        )
        assert stats.mean_ms > 0
