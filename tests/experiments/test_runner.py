"""Tests for repro.experiments.runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    PolicyOutcome,
    make_application,
    make_policy,
    run_policies,
)


class TestFactories:
    def test_make_application(self):
        assert make_application("matmul", 128).name == "matmul"
        assert make_application("blackscholes", 100).name == "blackscholes"
        assert make_application("grn", 50).name == "grn"
        with pytest.raises(ConfigurationError):
            make_application("nbody", 10)

    @pytest.mark.parametrize(
        "name", ["greedy", "acosta", "hdss", "hdss-async", "plb-hec", "plb-hec-free"]
    )
    def test_make_policy(self, name):
        policy = make_policy(name)
        assert policy is not None

    def test_oracle_needs_ground_truth(self):
        with pytest.raises(ConfigurationError):
            make_policy("oracle")

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("magic")


class TestPolicyOutcome:
    def test_aggregation(self):
        o = PolicyOutcome(policy="p")
        o.makespans = [1.0, 3.0]
        o.idle_fractions = [{"a": 0.2}, {"a": 0.4}]
        o.distributions = [{"a": 1.0}, {"a": 1.0}]
        assert o.mean_makespan == 2.0
        assert o.mean_idle() == {"a": pytest.approx(0.3)}
        assert o.mean_distribution() == {"a": 1.0}

    def test_empty(self):
        o = PolicyOutcome(policy="p")
        assert o.mean_idle() == {}
        assert o.mean_distribution() == {}


class TestRunPolicies:
    def test_grid_point(self):
        point = run_policies(
            "matmul", 2048, 2, policies=("greedy", "plb-hec"), replications=2
        )
        assert set(point.outcomes) == {"greedy", "plb-hec"}
        for outcome in point.outcomes.values():
            assert len(outcome.makespans) == 2
            assert all(m > 0 for m in outcome.makespans)

    def test_speedup_vs(self):
        point = run_policies(
            "matmul", 2048, 2, policies=("greedy", "plb-hec"), replications=1
        )
        s = point.speedup_vs("greedy", "plb-hec")
        assert s > 0

    def test_replication_validation(self):
        with pytest.raises(ConfigurationError):
            run_policies("matmul", 128, 1, replications=0)

    def test_replications_have_different_noise(self):
        point = run_policies(
            "matmul", 2048, 2, policies=("greedy",), replications=2,
            noise_sigma=0.05,
        )
        makespans = point.outcomes["greedy"].makespans
        assert makespans[0] != makespans[1]
