"""Tests for repro.experiments.heterogeneity."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.heterogeneity import (
    build_spread_cluster,
    render_heterogeneity,
    run_heterogeneity,
)


class TestBuildSpreadCluster:
    def test_spread_one_is_homogeneous(self):
        c = build_spread_cluster(1.0)
        clocks = {m.gpus[0].clock_ghz for m in c.machines}
        assert len(clocks) == 1

    def test_spread_realised(self):
        c = build_spread_cluster(16.0)
        clocks = [m.gpus[0].clock_ghz for m in c.machines]
        assert max(clocks) / min(clocks) == pytest.approx(16.0, rel=0.01)

    def test_aggregate_capacity_constant(self):
        totals = {
            round(sum(m.gpus[0].clock_ghz for m in build_spread_cluster(s).machines), 3)
            for s in (1.0, 4.0, 16.0)
        }
        assert len(totals) == 1

    def test_cpu_and_gpu_scaled_together(self):
        c = build_spread_cluster(9.0)
        for m in c.machines:
            ratio = m.cpu.clock_ghz / m.gpus[0].clock_ghz
            assert ratio == pytest.approx(3.0 / 0.9, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_spread_cluster(0.5)
        with pytest.raises(ConfigurationError):
            build_spread_cluster(2.0, num_machines=1)


class TestRunHeterogeneity:
    def test_small_sweep(self):
        points = run_heterogeneity(spreads=(1.0, 8.0), n=4096)
        assert len(points) == 2
        assert all(p.greedy_s > 0 for p in points)
        assert points[0].spread == 1.0

    def test_plb_beats_greedy_at_high_spread(self):
        points = run_heterogeneity(spreads=(8.0,), n=8192)
        assert points[0].plb_speedup > 1.0

    def test_render(self):
        points = run_heterogeneity(spreads=(1.0,), n=4096)
        out = render_heterogeneity(points)
        assert "plb_speedup" in out
