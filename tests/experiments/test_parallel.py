"""Tests for repro.experiments.parallel (sweep engine + result cache)."""

import json

import pytest

from repro.cluster import paper_cluster
from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    PointSpec,
    ResultCache,
    RunSpec,
    SweepStats,
    _factory_tag,
    resolve_jobs,
    run_point,
    run_sweep,
)
from repro.experiments.wallclock import points_equal

#: A small deterministic grid point: no measured-wall-clock overhead
#: (fixed charge), covering a no-overhead policy, HDSS and PLB-HeC.
SMALL = PointSpec(
    app_name="matmul",
    size=2048,
    num_machines=2,
    policies=("greedy", "hdss", "plb-hec"),
    replications=2,
    seed=3,
    fixed_overhead_s=0.01,
)


def assert_points_identical(a, b):
    assert points_equal(a, b), "sweep aggregates differ"


class TestSpecs:
    def test_expand_order_is_policy_major(self):
        specs = SMALL.expand()
        assert [s.policy_name for s in specs] == [
            "greedy", "greedy", "hdss", "hdss", "plb-hec", "plb-hec",
        ]
        assert [s.run_seed for s in specs] == [3000, 3001] * 3

    def test_replication_validation(self):
        with pytest.raises(ConfigurationError):
            PointSpec("matmul", 128, 1, ("greedy",), replications=0)

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            PointSpec("matmul", 128, 1, (), replications=1)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) >= 1

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)


class TestFactoryTag:
    def test_module_level_factory_tagged(self):
        assert _factory_tag(paper_cluster) == "repro.cluster.presets.paper_cluster"

    def test_lambda_untaggable(self):
        assert _factory_tag(lambda n: paper_cluster(n)) is None

    def test_closure_untaggable(self):
        def make():
            def factory(n):
                return paper_cluster(n)

            return factory

        assert _factory_tag(make()) is None


class TestParallelDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self, monkeypatch):
        """REPRO_JOBS=1 and REPRO_JOBS=4 must aggregate identically."""
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial_stats = SweepStats()
        serial = run_sweep([SMALL], cache=None, stats=serial_stats)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel_stats = SweepStats()
        parallel = run_sweep([SMALL], cache=None, stats=parallel_stats)
        assert serial_stats.jobs == 1
        assert parallel_stats.jobs == 4
        assert not parallel_stats.fell_back_serial
        assert_points_identical(serial, parallel)

    def test_matches_legacy_run_policies_seeding(self):
        """The engine reproduces the historical serial loop's results."""
        from repro.experiments.runner import run_policies

        legacy = run_policies(
            "matmul",
            2048,
            2,
            policies=("greedy", "hdss"),
            replications=2,
            seed=3,
            jobs=1,
        )
        engine = run_point(
            PointSpec(
                "matmul", 2048, 2, ("greedy", "hdss"), replications=2, seed=3
            ),
            jobs=1,
            cache=None,
        )
        assert_points_identical([legacy], [engine])

    def test_unpicklable_factory_falls_back_to_serial(self):
        spec = PointSpec(
            "matmul",
            1024,
            1,
            ("greedy",),
            replications=1,
            cluster_factory=lambda n: paper_cluster(n),
        )
        stats = SweepStats()
        points = run_sweep([spec], jobs=4, cache=None, stats=stats)
        assert stats.fell_back_serial
        assert points[0].outcomes["greedy"].makespans[0] > 0


class TestResultCache:
    def test_cold_then_warm_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold_stats = SweepStats()
        cold = run_sweep([SMALL], jobs=1, cache=cache, stats=cold_stats)
        assert cold_stats.cache_hits == 0
        assert cold_stats.executed == 6
        warm_stats = SweepStats()
        warm = run_sweep([SMALL], jobs=1, cache=cache, stats=warm_stats)
        assert warm_stats.cache_hits == 6
        assert warm_stats.executed == 0
        assert_points_identical(cold, warm)

    def test_key_depends_on_every_input(self):
        base = RunSpec("matmul", 2048, 2, "greedy", 3000, 0.005, 0.01)
        keys = {ResultCache.key(base, "tag")}
        for variant in (
            RunSpec("grn", 2048, 2, "greedy", 3000, 0.005, 0.01),
            RunSpec("matmul", 4096, 2, "greedy", 3000, 0.005, 0.01),
            RunSpec("matmul", 2048, 4, "greedy", 3000, 0.005, 0.01),
            RunSpec("matmul", 2048, 2, "hdss", 3000, 0.005, 0.01),
            RunSpec("matmul", 2048, 2, "greedy", 3001, 0.005, 0.01),
            RunSpec("matmul", 2048, 2, "greedy", 3000, 0.01, 0.01),
            RunSpec("matmul", 2048, 2, "greedy", 3000, 0.005, None),
        ):
            keys.add(ResultCache.key(variant, "tag"))
        keys.add(ResultCache.key(base, "other-tag"))
        assert len(keys) == 9

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep([SMALL], jobs=1, cache=cache)
        other = PointSpec(
            "matmul",
            2048,
            2,
            ("greedy", "hdss", "plb-hec"),
            replications=2,
            seed=4,
            fixed_overhead_s=0.01,
        )
        stats = SweepStats()
        run_sweep([other], jobs=1, cache=cache, stats=stats)
        assert stats.cache_hits == 0

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("matmul", 1024, 1, ("greedy",), replications=1)
        run_sweep([spec], jobs=1, cache=cache)
        (entry,) = list(tmp_path.rglob("*.json"))
        entry.write_text("{ torn")
        stats = SweepStats()
        points = run_sweep([spec], jobs=1, cache=cache, stats=stats)
        assert stats.cache_hits == 0
        assert stats.executed == 1
        assert points[0].outcomes["greedy"].makespans[0] > 0
        # the recomputed payload was re-stored and is valid JSON again
        assert json.loads(entry.read_text())["makespan"] > 0

    def test_unwritable_cache_root_degrades_to_warning(self, tmp_path):
        # REPRO_CACHE pointing at a regular file must not crash the
        # sweep (nor discard its computed results).
        not_a_dir = tmp_path / "cachefile"
        not_a_dir.write_text("occupied")
        cache = ResultCache(not_a_dir)
        spec = PointSpec("matmul", 1024, 1, ("greedy",), replications=1)
        stats = SweepStats()
        points = run_sweep([spec], jobs=1, cache=cache, stats=stats)
        assert stats.executed == 1
        assert points[0].outcomes["greedy"].makespans[0] > 0
        assert not_a_dir.read_text() == "occupied"

    def test_unstable_factory_is_never_cached(self, tmp_path):
        spec = PointSpec(
            "matmul",
            1024,
            1,
            ("greedy",),
            replications=1,
            cluster_factory=lambda n: paper_cluster(n),
        )
        cache = ResultCache(tmp_path)
        run_sweep([spec], jobs=1, cache=cache)
        assert list(tmp_path.rglob("*.json")) == []

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ResultCache.from_env().root.name == ".repro_cache"
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "deep"))
        assert ResultCache.from_env().root == tmp_path / "deep"


class TestTelemetry:
    def test_payload_carries_report_and_wall_clock(self):
        from repro.experiments.parallel import _execute_run
        from repro.obs.report import RunReport

        spec = RunSpec("matmul", 1024, 1, "plb-hec", 3000, 0.005, 0.01)
        payload = _execute_run(spec, paper_cluster)
        assert payload["wall_s"] > 0.0
        report = RunReport.from_dict(payload["report"])  # hash verifies
        assert report.config["app"] == "matmul"
        assert report.makespan == payload["makespan"]
        assert report.metrics["counters"]["plbhec.probe_rounds"] > 0
        assert "probe" in report.phase_summary

    def test_sweep_counters_cold_then_warm(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            cache = ResultCache(tmp_path)
            run_sweep([SMALL], jobs=1, cache=cache)
            cold = registry.snapshot()["counters"]
            assert cold["sweep.jobs"] == 6.0
            assert cold["sweep.cache_hits"] == 0.0
            assert cold["sweep.cache_misses"] == 6.0
            # every fresh run observed its wall clock
            hist = registry.snapshot()["histograms"]["sweep.job_wall_s"]
            assert hist["count"] == 6

            registry.reset()
            run_sweep([SMALL], jobs=1, cache=cache)
            warm = registry.snapshot()["counters"]
            # the acceptance check: a fully warm sweep is all cache hits
            assert warm["sweep.cache_hits"] == warm["sweep.jobs"] == 6.0
            assert warm.get("sweep.cache_misses", 0.0) == 0.0
        finally:
            set_registry(previous)

    def test_stats_aggregate_reports_even_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=cold_stats)
        warm_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=warm_stats)
        assert len(cold_stats.reports) == len(warm_stats.reports) == 6
        # cache replay serves byte-identical telemetry manifests
        assert warm_stats.reports == cold_stats.reports
        merged = warm_stats.metrics["counters"]
        assert merged["plbhec.probe_rounds"] > 0
        assert merged["sim.events_dispatched"] > 0


class TestBatching:
    def test_multi_point_sweep_preserves_order(self):
        points = [
            PointSpec("matmul", 1024, 1, ("greedy",), replications=1),
            PointSpec("matmul", 2048, 2, ("greedy",), replications=1),
        ]
        results = run_sweep(points, jobs=1, cache=None)
        assert [(p.size, p.num_machines) for p in results] == [(1024, 1), (2048, 2)]
        for point in results:
            assert point.outcomes["greedy"].makespans[0] > 0


class TestWorkerLogPropagation:
    def test_initializer_applies_parent_config(self):
        import logging

        from repro.experiments.parallel import _pool_worker_init
        from repro.util.logging import current_config, get_logger

        before = current_config()
        try:
            _pool_worker_init(("debug", "json"))
            assert current_config() == ("debug", "json")
            assert get_logger("repro").level == logging.DEBUG
        finally:
            if before is not None:
                _pool_worker_init(before)

    def test_initializer_noop_without_config(self):
        from repro.experiments.parallel import _pool_worker_init

        _pool_worker_init(None)  # must not raise or attach handlers

    def test_pool_uses_initializer(self, monkeypatch):
        # The executor must be constructed with the propagation hook.
        import repro.experiments.parallel as par

        captured = {}

        class FakePool:
            def __init__(self, max_workers=None, initializer=None, initargs=()):
                captured["initializer"] = initializer
                captured["initargs"] = initargs
                raise par.BrokenProcessPool()  # force serial fallback

        monkeypatch.setattr(par, "ProcessPoolExecutor", FakePool)
        stats = par.SweepStats()
        point = PointSpec("matmul", 1024, 1, ("greedy",), replications=1)
        par.run_sweep([point], jobs=2, cache=None, stats=stats)
        assert captured["initializer"] is par._pool_worker_init
        assert stats.fell_back_serial


class TestRunIdTagging:
    def test_payload_run_id_is_deterministic(self):
        from repro.experiments.parallel import RunSpec, _execute_run
        from repro.cluster import paper_cluster
        from repro.obs.report import config_hash

        spec = RunSpec("matmul", 1024, 1, "greedy", 0, 0.005)
        payload = _execute_run(spec, paper_cluster)
        expected = config_hash(payload["report"]["config"])[:12]
        assert payload["report"]["run_id"] == f"run-{expected}"


class TestSweepHistoryRecording:
    def test_fresh_runs_recorded_when_enabled(self, tmp_path, monkeypatch):
        from repro.obs.history import HistoryStore

        monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "hist"))
        cache = ResultCache(tmp_path / "cache")
        point = PointSpec("matmul", 1024, 1, ("greedy",), replications=2)
        run_sweep([point], jobs=1, cache=cache)
        store = HistoryStore(tmp_path / "hist")
        entries = store.entries(kind="run")
        assert len(entries) == 2
        assert entries[0]["samples"]["makespan"] > 0
        assert entries[0]["samples"]["wall_s"] is not None

    def test_cache_hits_not_double_counted(self, tmp_path, monkeypatch):
        from repro.obs.history import HistoryStore

        monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "hist"))
        cache = ResultCache(tmp_path / "cache")
        point = PointSpec("matmul", 1024, 1, ("greedy",), replications=1)
        run_sweep([point], jobs=1, cache=cache)
        run_sweep([point], jobs=1, cache=cache)  # fully warm: no new entries
        store = HistoryStore(tmp_path / "hist")
        assert len(store.entries(kind="run")) == 1

    def test_disabled_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        point = PointSpec("matmul", 1024, 1, ("greedy",), replications=1)
        run_sweep([point], jobs=1, cache=None)
        assert not (tmp_path / ".repro_history").exists()


def profile_calls(profile, fragment):
    """Total recorded calls of functions whose name contains ``fragment``."""
    return sum(
        f["ncalls"]
        for pdata in profile.get("phases", {}).values()
        for f in pdata.get("functions", {}).values()
        if fragment in f["name"]
    )


class TestProfiledSweeps:
    """Satellite: multiprocess profile aggregation + cache interplay."""

    #: Deterministic entry points whose call counts must not depend on
    #: worker count (unlike e.g. lru_cache internals, which run once per
    #: process and so differ between 1 and N workers by design).
    CURATED = (
        "repro.solver.ipm._solve_impl",
        "repro.solver.partition.solve_block_partition",
        "repro.modeling.least_squares.fit_basis_model",
        "repro.runtime.sim_executor",
    )

    def test_jobs2_merge_matches_serial_call_counts(self, monkeypatch):
        """A REPRO_JOBS=2 sweep merges worker profiles into the same
        deterministic call counts as the serial run."""
        monkeypatch.setenv("REPRO_JOBS", "2")
        ser_stats = SweepStats()
        serial = run_sweep(
            [SMALL], jobs=1, cache=None, stats=ser_stats, profile=True
        )
        par_stats = SweepStats()
        parallel = run_sweep(
            [SMALL], jobs=2, cache=None, stats=par_stats, profile=True
        )
        assert not par_stats.fell_back_serial
        assert_points_identical(serial, parallel)
        assert ser_stats.profile and par_stats.profile
        for fragment in self.CURATED:
            ser_calls = profile_calls(ser_stats.profile, fragment)
            par_calls = profile_calls(par_stats.profile, fragment)
            assert ser_calls > 0, fragment
            assert ser_calls == par_calls, fragment

    def test_profiled_sweep_attributes_named_phases(self):
        stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=None, stats=stats, profile=True)
        from repro.obs.profiler import PROFILE_PHASES, phase_breakdown

        breakdown = phase_breakdown(stats.profile)
        assert set(breakdown) <= set(PROFILE_PHASES)
        assert sum(p["share"] for p in breakdown.values()) == pytest.approx(1.0)
        # The sim spends real time in all of probe/fit/solve/execute.
        for phase in ("probe", "fit", "solve", "execute"):
            assert breakdown[phase]["self_s"] > 0.0, phase

    def test_profiled_sweep_bypasses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=stats, profile=True)
        # Nothing stored: profiled payloads would poison unprofiled
        # replays (and measured overhead differs under the tracer).
        assert list(tmp_path.rglob("*.json")) == []
        assert stats.cache_hits == 0
        # A warm unprofiled sweep afterwards sees a cold cache.
        warm_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=warm_stats)
        assert warm_stats.cache_hits == 0
        assert warm_stats.executed == 6

    def test_repro_profile_env_resolution(self, monkeypatch):
        from repro.experiments.parallel import resolve_profile

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert resolve_profile(None) is False
        assert resolve_profile(True) is True
        assert resolve_profile(False) is False
        for value in ("1", "on", "true", "YES"):
            monkeypatch.setenv("REPRO_PROFILE", value)
            assert resolve_profile(None) is True
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert resolve_profile(None) is False
        # Explicit argument always wins over the environment.
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert resolve_profile(False) is False

    def test_profiled_aggregates_match_unprofiled(self):
        """Profiling must observe, not perturb: virtual-time results are
        identical with and without the tracer."""
        plain = run_sweep([SMALL], jobs=1, cache=None)
        profiled = run_sweep([SMALL], jobs=1, cache=None, profile=True)
        assert_points_identical(plain, profiled)


class TestSeriesPayloads:
    """Sampled runs carry telemetry series in payloads (schema v5)."""

    SAMPLED = PointSpec(
        app_name="matmul",
        size=2048,
        num_machines=2,
        policies=("greedy", "plb-hec"),
        replications=2,
        seed=3,
        fixed_overhead_s=0.01,
        sample_interval=0.0,  # auto
    )

    def series(self, stats):
        return [p.get("series") for p in stats.payloads]

    def test_sampled_payloads_carry_series(self):
        from repro.obs.timeseries import store_from_payload

        stats = SweepStats()
        run_sweep([self.SAMPLED], jobs=1, cache=None, stats=stats)
        for payload in stats.payloads:
            series = payload["series"]
            assert series["interval"] > 0.0  # auto resolved
            assert series["samples"] > 0
            store = store_from_payload(series["store"])
            assert store.values("completed_units")[-1] > 0

    def test_unsampled_payloads_have_no_series(self):
        stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=None, stats=stats)
        assert all("series" not in p for p in stats.payloads)

    def test_parallel_sweep_series_match_serial(self, monkeypatch):
        """Satellite: REPRO_JOBS=2 merges series identical to serial."""
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = SweepStats()
        run_sweep([self.SAMPLED], cache=None, stats=serial)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = SweepStats()
        run_sweep([self.SAMPLED], cache=None, stats=parallel)
        assert not parallel.fell_back_serial
        a, b = self.series(serial), self.series(parallel)
        assert a and None not in a
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_warm_cache_replays_series(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepStats()
        run_sweep([self.SAMPLED], jobs=1, cache=cache, stats=cold)
        warm = SweepStats()
        run_sweep([self.SAMPLED], jobs=1, cache=cache, stats=warm)
        assert warm.cache_hits == 4
        assert json.dumps(self.series(cold), sort_keys=True) == json.dumps(
            self.series(warm), sort_keys=True
        )

    def test_cache_key_isolates_sampling(self):
        base = RunSpec("matmul", 2048, 2, "greedy", 3000, 0.005, 0.01)
        sampled = RunSpec(
            "matmul", 2048, 2, "greedy", 3000, 0.005, 0.01,
            sample_interval=0.5,
        )
        auto = RunSpec(
            "matmul", 2048, 2, "greedy", 3000, 0.005, 0.01,
            sample_interval=0.0,
        )
        keys = {
            ResultCache.key(base, "tag"),
            ResultCache.key(sampled, "tag"),
            ResultCache.key(auto, "tag"),
        }
        assert len(keys) == 3


class TestLedgerPayloads:
    """The decision ledger rides in sweep payloads (schema v4)."""

    def ledgers(self, stats):
        return [
            (p["report"]["config"]["policy"], p["ledger"])
            for p in stats.payloads
            if "ledger" in p
        ]

    def test_only_ledger_keeping_policies_carry_one(self):
        stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=None, stats=stats)
        policies = {name for name, _ in self.ledgers(stats)}
        assert policies == {"plb-hec"}

    def test_serial_and_parallel_ledgers_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = SweepStats()
        run_sweep([SMALL], cache=None, stats=serial)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = SweepStats()
        run_sweep([SMALL], cache=None, stats=parallel)
        a, b = self.ledgers(serial), self.ledgers(parallel)
        assert a and json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_warm_cache_replays_byte_identical_ledgers(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=cold)
        warm = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=warm)
        assert warm.cache_hits == 6
        assert json.dumps(self.ledgers(cold), sort_keys=True) == json.dumps(
            self.ledgers(warm), sort_keys=True
        )

    def test_ledger_attribution_is_complete(self):
        stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=None, stats=stats)
        for _, ledger in self.ledgers(stats):
            attribution = ledger["attribution"]
            assert attribution["attributed"] > 0
            assert attribution["unattributed"] == 0


class TestCritpathPayload:
    def test_payload_carries_exact_attribution(self):
        import math

        from repro.experiments.parallel import _execute_run
        from repro.obs.critpath import CATEGORIES, CRITPATH_SCHEMA

        spec = RunSpec("matmul", 1024, 1, "plb-hec", 3000, 0.005, 0.01)
        critpath = _execute_run(spec, paper_cluster)["critpath"]
        assert critpath["schema"] == CRITPATH_SCHEMA
        assert set(critpath["categories"]) == set(CATEGORIES)
        total = math.fsum(critpath["categories"].values())
        assert abs(total - critpath["makespan"]) < 1e-9
        for name in ("zero_transfer", "zero_scheduler", "perfect_balance"):
            assert critpath["bounds"][name] <= critpath["makespan"] + 1e-9

    def test_serial_parallel_byte_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "-")
        serial_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=None, stats=serial_stats)
        parallel_stats = SweepStats()
        run_sweep([SMALL], jobs=4, cache=None, stats=parallel_stats)
        serial = [json.dumps(p["critpath"], sort_keys=True)
                  for p in serial_stats.payloads]
        parallel = [json.dumps(p["critpath"], sort_keys=True)
                    for p in parallel_stats.payloads]
        assert serial == parallel

    def test_warm_cache_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=cold_stats)
        warm_stats = SweepStats()
        run_sweep([SMALL], jobs=1, cache=cache, stats=warm_stats)
        assert warm_stats.cache_hits == warm_stats.total_runs
        cold = [json.dumps(p["critpath"], sort_keys=True)
                for p in cold_stats.payloads]
        warm = [json.dumps(p["critpath"], sort_keys=True)
                for p in warm_stats.payloads]
        assert cold == warm

    def test_cache_version_bumped_for_critpath(self):
        from repro.experiments.parallel import ALGORITHM_VERSION

        # stale pre-attribution cache entries must never replay
        assert int(ALGORITHM_VERSION) >= 6
