"""Tests for repro.experiments.weak_scaling."""

import pytest

from repro.experiments.weak_scaling import (
    render_weak_scaling,
    run_weak_scaling,
)


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return run_weak_scaling(machine_counts=(1, 2), base_order=4096)

    def test_problem_grows_with_capacity(self, points):
        assert points[1].capacity_gflops > points[0].capacity_gflops
        assert points[1].matrix_order > points[0].matrix_order

    def test_cubic_work_scaling(self, points):
        work_ratio = (points[1].matrix_order / points[0].matrix_order) ** 3
        capacity_ratio = points[1].capacity_gflops / points[0].capacity_gflops
        assert work_ratio == pytest.approx(capacity_ratio, rel=0.10)

    def test_positive_makespans(self, points):
        for p in points:
            assert p.greedy_s > 0 and p.plb_s > 0

    def test_render(self, points):
        out = render_weak_scaling(points)
        assert "plb_eff" in out
        assert "greedy_eff" in out
