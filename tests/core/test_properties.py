"""Property-based tests for the PLB-HeC building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probe_plan import ProbePlan
from repro.core.rebalance import SkewMonitor

device_ids = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1,
    max_size=8,
    unique=True,
)
rates = st.floats(1e-6, 1e6)


class TestProbePlanProperties:
    @given(device_ids, st.integers(1, 1000), st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_sizes_positive_integers(self, ids, s0, round_index):
        plan = ProbePlan(ids, s0)
        rate_map = {d: float(i + 1) for i, d in enumerate(ids)}
        sizes = plan.sizes(round_index, rate_map if round_index > 1 else None)
        assert set(sizes) == set(ids)
        for v in sizes.values():
            assert isinstance(v, int)
            assert v >= 1

    @given(device_ids, st.integers(1, 100), st.lists(rates, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_faster_device_never_smaller_probe(self, ids, s0, rate_values):
        plan = ProbePlan(ids, s0)
        rate_map = {d: rate_values[i % len(rate_values)] for i, d in enumerate(ids)}
        sizes = plan.sizes(3, rate_map)
        by_rate = sorted(ids, key=lambda d: rate_map[d])
        for slow, fast in zip(by_rate, by_rate[1:]):
            assert sizes[slow] <= sizes[fast] + 1  # integer rounding slack

    @given(device_ids, st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_multiplier_monotone_in_round(self, ids, s0):
        plan = ProbePlan(ids, s0)
        mults = [plan.multiplier(r) for r in range(1, 10)]
        assert mults == sorted(mults)

    @given(device_ids, st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_fastest_gets_exactly_base(self, ids, s0):
        plan = ProbePlan(ids, s0)
        rate_map = {d: float(i + 1) for i, d in enumerate(ids)}
        sizes = plan.sizes(2, rate_map)
        fastest = max(ids, key=lambda d: rate_map[d])
        assert sizes[fastest] == 2 * s0


class TestSkewMonitorProperties:
    @given(
        st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_trip_iff_spread_exceeds_threshold(self, durations, threshold):
        monitor = SkewMonitor(threshold)
        monitor.expect(1, len(durations))
        tripped = False
        for i, duration in enumerate(durations):
            tripped = monitor.record(1, f"d{i}", end_time=1.0, duration=duration)
        mean = sum(durations) / len(durations)
        spread = max(durations) - min(durations)
        assert tripped == (spread > threshold * mean)

    @given(st.floats(0.1, 10.0), st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_identical_durations_never_trip(self, duration, n):
        monitor = SkewMonitor(0.05)
        monitor.expect(1, n)
        tripped = False
        for i in range(n):
            tripped = monitor.record(1, f"d{i}", end_time=float(i), duration=duration)
        assert not tripped


class TestDomainProperties:
    @given(
        st.integers(1, 10_000),
        st.lists(st.integers(1, 500), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_grants_tile_domain_exactly(self, total, requests):
        from repro.runtime.data import BlockDomain

        domain = BlockDomain(total)
        grants = []
        for req in requests:
            start, got = domain.take(req)
            if got:
                grants.append((start, got))
            if domain.exhausted:
                break
        # grants are contiguous, ordered, non-overlapping
        cursor = 0
        for start, got in grants:
            assert start == cursor
            cursor += got
        assert cursor == total - domain.remaining
