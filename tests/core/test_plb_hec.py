"""Tests for repro.core.plb_hec — the paper's algorithm."""

import pytest

from repro.apps import MatMul
from repro.balancers import Greedy
from repro.core import PLBHeC
from repro.errors import ConfigurationError
from repro.runtime import Runtime
from repro.runtime.sim_executor import Perturbation


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"r2_threshold": 0.0},
            {"r2_threshold": 1.5},
            {"max_profile_fraction": 0.0},
            {"min_profile_fraction": 0.5, "max_profile_fraction": 0.2},
            {"rebalance_threshold": 0.0},
            {"num_steps": 0},
            {"min_probe_rounds": 1},
            {"max_probe_rounds": 2, "min_probe_rounds": 4},
            {"overhead_scale": -1.0},
            {"rel_rmse_accept": 0.0},
            {"probe_depth_factor": -0.1},
            {"recency_decay": 0.0},
            {"rebalance_recency_decay": 0.0},
        ],
    )
    def test_invalid_kwargs(self, kwargs):
        with pytest.raises(ConfigurationError):
            PLBHeC(**kwargs)


class TestModelingPhase:
    def run(self, cluster, n=4096, **kwargs):
        app = MatMul(n=n)
        policy = PLBHeC(**kwargs)
        rt = Runtime(cluster, app.codelet(), seed=2)
        res = rt.run(policy, app.total_units, app.default_initial_block_size())
        return policy, res

    def test_probe_phase_labelled(self, small_cluster):
        _, res = self.run(small_cluster)
        probe = [r for r in res.trace.records if r.phase == "probe"]
        assert probe, "no probe records"
        assert min(r.start_time for r in probe) == 0.0

    def test_round_one_uniform_initial_size(self, small_cluster):
        _, res = self.run(small_cluster)
        round1 = [r for r in res.trace.records if r.phase == "probe" and r.step == 1]
        s0 = MatMul(n=4096).default_initial_block_size()
        assert {r.units for r in round1} == {s0}
        assert len(round1) == len(small_cluster.devices())

    def test_later_rounds_scaled_by_speed(self, small_cluster):
        _, res = self.run(small_cluster)
        round3 = {
            r.worker_id: r.units
            for r in res.trace.records
            if r.phase == "probe" and r.step == 3
        }
        if round3:  # modeling may end earlier on tiny inputs
            assert round3["alpha.gpu0"] > round3["beta.cpu"]

    def test_at_least_four_rounds(self, small_cluster):
        _, res = self.run(small_cluster, n=16384)
        rounds = {r.step for r in res.trace.records if r.phase == "probe"}
        assert len(rounds) >= 4

    def test_consumption_bounded(self, small_cluster):
        policy, res = self.run(small_cluster, n=16384)
        probe_units = sum(
            r.units for r in res.trace.records if r.phase == "probe"
        )
        # the 20% cap, with one round of slack for the in-flight overshoot
        assert probe_units <= 0.35 * 16384

    def test_models_fitted_for_every_device(self, small_cluster):
        policy, _ = self.run(small_cluster)
        assert set(policy.models) == {
            d.device_id for d in small_cluster.devices()
        }

    def test_probe_barrier_per_round(self, small_cluster):
        _, res = self.run(small_cluster)
        probe = [r for r in res.trace.records if r.phase == "probe"]
        by_round = {}
        for r in probe:
            by_round.setdefault(r.step, []).append(r)
        rounds = sorted(by_round)
        for a, b in zip(rounds, rounds[1:]):
            end_a = max(r.end_time for r in by_round[a])
            start_b = min(r.start_time for r in by_round[b])
            assert start_b >= end_a - 1e-9


class TestSelectionAndExecution:
    def test_completes_domain(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        res = rt.run(PLBHeC(), app.total_units, app.default_initial_block_size())
        assert res.trace.total_units() == 4096

    def test_first_partition_recorded(self, small_cluster):
        app = MatMul(n=4096)
        policy = PLBHeC()
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        rt.run(policy, app.total_units, app.default_initial_block_size())
        part = policy.first_partition
        assert part is not None
        assert sum(part.fractions.values()) == pytest.approx(1.0)

    def test_partition_favours_fast_devices(self, small_cluster):
        app = MatMul(n=8192)
        policy = PLBHeC()
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        rt.run(policy, app.total_units, app.default_initial_block_size())
        fr = policy.first_partition.fractions
        assert fr["alpha.gpu0"] > fr["beta.cpu"]

    def test_overhead_charged_by_default(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        res = rt.run(PLBHeC(), app.total_units, app.default_initial_block_size())
        assert res.solver_overhead_s > 0.0

    def test_overhead_scale_zero_disables_charging(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        res = rt.run(
            PLBHeC(overhead_scale=0.0),
            app.total_units,
            app.default_initial_block_size(),
        )
        assert res.solver_overhead_s == 0.0

    def test_beats_greedy_on_large_heterogeneous_input(self, small_cluster):
        app = MatMul(n=16384)
        plb = Runtime(small_cluster, app.codelet(), seed=2).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        greedy = Runtime(small_cluster, app.codelet(), seed=2).run(
            Greedy(), app.total_units, app.default_initial_block_size()
        )
        assert plb.makespan < greedy.makespan

    def test_steady_state_no_rebalance(self, small_cluster):
        """Paper: 'this rebalancing was not executed' in steady conditions."""
        app = MatMul(n=16384)
        rt = Runtime(small_cluster, app.codelet(), seed=2, noise_sigma=0.002)
        res = rt.run(PLBHeC(), app.total_units, app.default_initial_block_size())
        assert res.num_rebalances == 0


class TestRebalancing:
    def test_perturbation_triggers_rebalance(self, small_cluster):
        app = MatMul(n=16384)
        perturbation = Perturbation(
            device_id="alpha.gpu0", start_time=1.0, factor=5.0
        )
        policy = PLBHeC(num_steps=10)
        rt = Runtime(
            small_cluster, app.codelet(), seed=2, perturbations=(perturbation,)
        )
        res = rt.run(policy, app.total_units, app.default_initial_block_size())
        assert res.num_rebalances >= 1
        assert res.trace.total_units() == 16384

    def test_rebalance_shrinks_slowed_device_blocks(self, small_cluster):
        app = MatMul(n=16384)
        perturbation = Perturbation(
            device_id="alpha.gpu0", start_time=1.0, factor=5.0
        )
        policy = PLBHeC(num_steps=10)
        rt = Runtime(
            small_cluster, app.codelet(), seed=2, perturbations=(perturbation,)
        )
        rt.run(policy, app.total_units, app.default_initial_block_size())
        history = policy.selection_history
        assert len(history) >= 2
        first = history[0].units_by_device["alpha.gpu0"]
        last = history[-1].units_by_device["alpha.gpu0"]
        assert last < first

    def test_threshold_inf_never_rebalances(self, small_cluster):
        app = MatMul(n=16384)
        perturbation = Perturbation(
            device_id="alpha.gpu0", start_time=1.0, factor=5.0
        )
        rt = Runtime(
            small_cluster, app.codelet(), seed=2, perturbations=(perturbation,)
        )
        res = rt.run(
            PLBHeC(rebalance_threshold=1e12),
            app.total_units,
            app.default_initial_block_size(),
        )
        assert res.num_rebalances == 0


class TestWarmStart:
    def test_second_phase_skips_probing(self, small_cluster):
        app = MatMul(n=8192)
        policy = PLBHeC(warm_start=True)
        first = Runtime(small_cluster, app.codelet(), seed=2).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        second = Runtime(small_cluster, app.codelet(), seed=3).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        probe_first = sum(
            r.units for r in first.trace.records if r.phase == "probe"
        )
        probe_second = sum(
            r.units for r in second.trace.records if r.phase == "probe"
        )
        assert probe_first > 0
        assert probe_second == 0

    def test_warm_phase_faster(self, small_cluster):
        app = MatMul(n=8192)
        policy = PLBHeC(warm_start=True)
        first = Runtime(small_cluster, app.codelet(), seed=2).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        second = Runtime(small_cluster, app.codelet(), seed=3).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        assert second.makespan < first.makespan

    def test_cold_policy_reprobes(self, small_cluster):
        app = MatMul(n=8192)
        policy = PLBHeC()  # warm_start off
        Runtime(small_cluster, app.codelet(), seed=2).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        second = Runtime(small_cluster, app.codelet(), seed=3).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        probe_second = sum(
            r.units for r in second.trace.records if r.phase == "probe"
        )
        assert probe_second > 0

    def test_device_set_change_falls_back_to_probing(self, small_cluster, paper4):
        app = MatMul(n=8192)
        policy = PLBHeC(warm_start=True)
        Runtime(small_cluster, app.codelet(), seed=2).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        # different cluster -> profiles don't match -> full modeling phase
        second = Runtime(paper4, app.codelet(), seed=3).run(
            policy, app.total_units, app.default_initial_block_size()
        )
        probe_second = sum(
            r.units for r in second.trace.records if r.phase == "probe"
        )
        assert probe_second > 0

    def test_warm_result_correct(self, small_cluster):
        app = MatMul(n=4096)
        policy = PLBHeC(warm_start=True)
        for seed in (2, 3):
            res = Runtime(small_cluster, app.codelet(), seed=seed).run(
                policy, app.total_units, app.default_initial_block_size()
            )
            assert res.trace.total_units() == 4096


class TestTinyInputs:
    def test_domain_smaller_than_probes(self, small_cluster):
        app = MatMul(n=64)
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        res = rt.run(PLBHeC(), app.total_units, 32)
        assert res.trace.total_units() == 64

    def test_single_unit_domain(self, small_cluster):
        app = MatMul(n=1)
        rt = Runtime(small_cluster, app.codelet(), seed=2)
        res = rt.run(PLBHeC(), app.total_units, 1)
        assert res.trace.total_units() == 1
