"""Tests for repro.core.probe_plan."""

import pytest

from repro.core.probe_plan import ProbePlan
from repro.errors import SchedulingError


class TestProbePlan:
    def test_validation(self):
        with pytest.raises(SchedulingError):
            ProbePlan([], 8)
        with pytest.raises(SchedulingError):
            ProbePlan(["a"], 0)
        with pytest.raises(SchedulingError):
            ProbePlan(["a"], 8, max_multiplier=0)

    def test_paper_multipliers_first_four_rounds(self):
        plan = ProbePlan(["a"], 1)
        assert [plan.multiplier(r) for r in (1, 2, 3, 4)] == [1, 2, 4, 8]

    def test_accelerated_growth_after_round_four(self):
        plan = ProbePlan(["a"], 1)
        assert plan.multiplier(5) == 32
        assert plan.multiplier(6) == 128

    def test_multiplier_capped(self):
        plan = ProbePlan(["a"], 1, max_multiplier=16)
        assert plan.multiplier(5) == 16
        assert plan.multiplier(9) == 16

    def test_round_index_one_based(self):
        with pytest.raises(SchedulingError):
            ProbePlan(["a"], 1).multiplier(0)

    def test_round_one_uniform(self):
        plan = ProbePlan(["a", "b", "c"], 16)
        assert plan.sizes(1, None) == {"a": 16, "b": 16, "c": 16}

    def test_round_two_needs_rates(self):
        plan = ProbePlan(["a"], 16)
        with pytest.raises(SchedulingError):
            plan.sizes(2, None)

    def test_fastest_gets_full_multiplier(self):
        plan = ProbePlan(["fast", "slow"], 10)
        sizes = plan.sizes(2, {"fast": 100.0, "slow": 25.0})
        assert sizes["fast"] == 20
        assert sizes["slow"] == 5

    def test_rate_scaling_is_stable_across_rounds(self):
        """Equalised probe times must not collapse the scaling to uniform."""
        plan = ProbePlan(["fast", "slow"], 10)
        rates = {"fast": 100.0, "slow": 25.0}
        s2 = plan.sizes(2, rates)
        s3 = plan.sizes(3, rates)
        assert s3["slow"] / s3["fast"] == pytest.approx(
            s2["slow"] / s2["fast"], rel=0.1
        )

    def test_zero_rate_falls_back_to_unscaled(self):
        plan = ProbePlan(["a", "b"], 10)
        sizes = plan.sizes(2, {"a": 0.0, "b": 0.0})
        assert sizes == {"a": 20, "b": 20}

    def test_missing_device_uses_fastest_rate(self):
        plan = ProbePlan(["a", "b"], 10)
        sizes = plan.sizes(2, {"a": 50.0})
        assert sizes["b"] == 20

    def test_sizes_at_least_one(self):
        plan = ProbePlan(["fast", "glacial"], 4)
        sizes = plan.sizes(2, {"fast": 1000.0, "glacial": 0.001})
        assert sizes["glacial"] == 1
