"""Tests for repro.core.rebalance."""

import pytest

from repro.core.rebalance import SkewMonitor
from repro.errors import ConfigurationError


class TestSkewMonitor:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkewMonitor(threshold=0.0)
        m = SkewMonitor()
        with pytest.raises(ConfigurationError):
            m.expect(1, 0)

    def test_no_trip_on_equal_durations(self):
        m = SkewMonitor(0.1)
        m.expect(1, 3)
        assert not m.record(1, "a", end_time=10.0, duration=1.0)
        assert not m.record(1, "b", end_time=11.0, duration=1.0)
        assert not m.record(1, "c", end_time=12.0, duration=1.0)

    def test_trips_on_duration_spread(self):
        m = SkewMonitor(0.1)
        m.expect(1, 2)
        assert not m.record(1, "a", end_time=1.0, duration=1.0)
        assert m.record(1, "b", end_time=2.0, duration=1.2)

    def test_does_not_trip_on_end_time_drift(self):
        """Accumulated asynchronous drift must not cause rebalances."""
        m = SkewMonitor(0.1)
        m.expect(3, 2)
        assert not m.record(3, "a", end_time=10.0, duration=1.0)
        # same duration, very different completion instant
        assert not m.record(3, "b", end_time=50.0, duration=1.0)

    def test_waits_for_all_expected(self):
        m = SkewMonitor(0.1)
        m.expect(1, 3)
        assert not m.record(1, "a", 1.0, 1.0)
        assert not m.record(1, "b", 1.0, 5.0)  # huge spread, but incomplete

    def test_single_device_step_never_trips(self):
        m = SkewMonitor(0.1)
        m.expect(1, 1)
        assert not m.record(1, "a", 1.0, 1.0)

    def test_unexpected_step_never_trips(self):
        m = SkewMonitor(0.1)
        assert not m.record(9, "a", 1.0, 1.0)

    def test_step_state_cleared_after_check(self):
        m = SkewMonitor(0.1)
        m.expect(1, 2)
        m.record(1, "a", 1.0, 1.0)
        m.record(1, "b", 1.0, 1.0)
        # the same step can be re-armed fresh
        m.expect(1, 2)
        assert not m.record(1, "a", 2.0, 1.0)

    def test_threshold_relative_to_mean_duration(self):
        m = SkewMonitor(0.5)
        m.expect(1, 2)
        m.record(1, "a", 1.0, 1.0)
        # spread 0.4 < 0.5 * mean(1.2)
        assert not m.record(1, "b", 1.0, 1.4)
        m.expect(2, 2)
        m.record(2, "a", 1.0, 1.0)
        # spread 1.0 > 0.5 * mean(1.5)
        assert m.record(2, "b", 1.0, 2.0)

    def test_reset(self):
        m = SkewMonitor(0.1)
        m.expect(1, 2)
        m.record(1, "a", 1.0, 1.0)
        m.reset()
        # after reset the pending step is forgotten
        assert not m.record(1, "b", 1.0, 99.0)

    def test_zero_duration_step_ignored(self):
        m = SkewMonitor(0.1)
        m.expect(1, 2)
        m.record(1, "a", 1.0, 0.0)
        assert not m.record(1, "b", 1.0, 0.0)
