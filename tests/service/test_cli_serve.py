"""``repro serve`` and ``repro chaos --serve`` at the CLI boundary."""

import json

import pytest

from repro.cli import build_parser, main
from repro.service import validate_scorecard


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.rate == 2.0
        assert args.policy == "plb-hec"
        assert args.shed_policy == "reject"
        assert args.scorecard_out == "serve_scorecard.json"
        assert args.slo is None

    def test_serve_rejects_unknown_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "magic"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--shed-policy", "coin"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--pattern", "tidal"])

    def test_chaos_grows_serve_mode(self):
        args = build_parser().parse_args(["chaos", "--serve", "--quick"])
        assert args.serve and args.quick


class TestServeCommand:
    def test_healthy_episode_exits_zero(self, tmp_path, capsys):
        card_path = tmp_path / "card.json"
        series_path = tmp_path / "series.jsonl"
        code = main([
            "serve", "--rate", "2", "--duration", "8", "--seed", "3",
            "--scorecard-out", str(card_path),
            "--series-out", str(series_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Service episode" in out
        card = json.loads(card_path.read_text())
        assert validate_scorecard(card) == []
        assert card["jobs"]["completed"] > 0
        from repro.obs.timeseries import validate_series

        lines = series_path.read_text().splitlines()
        assert validate_series(lines) == []

    def test_slo_violation_exits_two(self, tmp_path):
        spec = tmp_path / "impossible.slo.json"
        spec.write_text(json.dumps({
            "name": "impossible",
            "objectives": [
                {"name": "no-goodput",
                 "expr": "max(serve_goodput_jobs_per_s) < 0"},
            ],
        }))
        code = main([
            "serve", "--rate", "2", "--duration", "6", "--seed", "0",
            "--scorecard-out", "-", "--slo", str(spec),
        ])
        assert code == 2

    def test_passing_slo_exits_zero(self, tmp_path):
        spec = tmp_path / "ok.slo.json"
        spec.write_text(json.dumps({
            "name": "ok",
            "objectives": [
                {"name": "drained", "expr": "last(serve_backlog_jobs) <= 0"},
            ],
        }))
        report = tmp_path / "slo_report.json"
        code = main([
            "serve", "--rate", "2", "--duration", "6", "--seed", "0",
            "--scorecard-out", "-", "--slo", str(spec),
            "--slo-report-out", str(report),
        ])
        assert code == 0
        assert json.loads(report.read_text())["ok"]

    def test_fault_flags_reach_the_episode(self, tmp_path, capsys):
        card_path = tmp_path / "card.json"
        code = main([
            "serve", "--rate", "3", "--duration", "8", "--seed", "4",
            "--transient", "A.gpu0@2.0+2.0",
            "--scorecard-out", str(card_path),
        ])
        assert code == 0
        card = json.loads(card_path.read_text())
        assert card["breakers"]["A.gpu0"]["opens"] >= 1

    def test_overload_sheds_and_stays_bounded(self, tmp_path):
        card_path = tmp_path / "card.json"
        code = main([
            "serve", "--rate", "12", "--duration", "8", "--seed", "0",
            "--queue-limit", "6", "--shed-policy", "drop-oldest",
            "--scorecard-out", str(card_path),
        ])
        assert code == 0
        card = json.loads(card_path.read_text())
        assert card["jobs"]["shed"] > 0
        assert card["latency_s"]["p99"] < 8.0


class TestTopOnServeSeries:
    def test_top_renders_the_serve_frame(self, tmp_path, capsys):
        series_path = tmp_path / "series.jsonl"
        assert main([
            "serve", "--rate", "2", "--duration", "8", "--seed", "3",
            "--scorecard-out", "-", "--series-out", str(series_path),
        ]) == 0
        capsys.readouterr()
        assert main(["top", "--once", "--series", str(series_path)]) == 0
        out = capsys.readouterr().out
        assert "A.gpu0" in out
        assert "jobs in flight" in out
        assert "jobs/s" in out
        assert "tenant-fairness" in out


class TestServeChaosCommand:
    def test_quick_campaign_exits_zero(self, tmp_path, capsys):
        out_path = tmp_path / "serve_chaos.json"
        code = main([
            "chaos", "--serve", "--quick", "--runs", "2", "--seed", "0",
            "--out", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Serve chaos campaign" in out
        card = json.loads(out_path.read_text())
        assert card["all_invariants_ok"]
        assert card["total_runs"] == 2
        assert set(card["config"]["policies"]) == {"plb-hec", "greedy"}
