"""Circuit-breaker state machine: closed -> open -> half-open -> ..."""

import pytest

from repro.errors import ConfigurationError
from repro.service.breakers import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.sim.random import RandomStreams


def breaker(**kw):
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("cooldown", 2.0)
    kw.setdefault("jitter", 0.0)
    return CircuitBreaker("dev", **kw)


class TestTransitions:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            breaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            breaker(cooldown=0.0)
        with pytest.raises(ConfigurationError):
            breaker(jitter=1.0)

    def test_closed_until_threshold(self):
        b = breaker()
        for _ in range(2):
            b.record_failure(0.0)
            assert b.state == CLOSED and b.allow(0.0)
        b.record_failure(0.0)
        assert b.state == OPEN
        assert b.opens == 1
        assert not b.allow(0.1)

    def test_success_resets_the_failure_run(self):
        b = breaker()
        b.record_failure(0.0)
        b.record_failure(0.0)
        b.record_success(0.0)
        b.record_failure(0.0)
        b.record_failure(0.0)
        assert b.state == CLOSED

    def test_cooldown_elapses_into_half_open_single_probe(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert not b.allow(1.9)
        assert b.allow(2.0), "cooldown elapsed: one probe admitted"
        assert b.state == HALF_OPEN
        assert b.probes == 1
        assert not b.allow(2.1), "only one probe may be in flight"

    def test_probe_success_recloses_and_resets_cooldown(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert b.allow(2.0)
        b.record_success(2.5)
        assert b.state == CLOSED
        assert b.closes == 1
        # cooldown is back to base: a fresh open waits 2s again
        for _ in range(3):
            b.record_failure(3.0)
        assert not b.allow(4.9)
        assert b.allow(5.0)

    def test_probe_failure_reopens_with_doubled_cooldown(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert b.allow(2.0)
        b.record_failure(2.0)
        assert b.state == OPEN
        assert b.opens == 2
        # second cooldown is 2x the base
        assert not b.allow(2.0 + 3.9)
        assert b.allow(2.0 + 4.0)

    def test_cooldown_growth_is_capped(self):
        b = breaker()
        now = 0.0
        for _ in range(3):
            b.record_failure(now)
        for _ in range(8):  # far past the 8x cap
            now = b.reopen_at
            assert b.allow(now)
            b.record_failure(now)
        start = b.reopen_at
        assert b.allow(start)
        b.record_failure(start)
        assert b.reopen_at - start <= 8.0 * 2.0 + 1e-9

    def test_on_device_recovered_probes_immediately(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert not b.allow(0.1)
        b.on_device_recovered(0.2)
        assert b.state == HALF_OPEN
        assert b.allow(0.2), "recovery signal admits a probe before cooldown"

    def test_on_device_recovered_is_noop_unless_open(self):
        b = breaker()
        b.on_device_recovered(0.0)
        assert b.state == CLOSED

    def test_force_open(self):
        b = breaker()
        b.force_open(0.0)
        assert b.state == OPEN and b.opens == 1
        b.force_open(0.1)
        assert b.opens == 1, "already open: force_open is idempotent"

    def test_to_dict_counts(self):
        b = breaker()
        for _ in range(3):
            b.record_failure(0.0)
        assert b.allow(2.0)
        b.record_success(2.1)
        assert b.to_dict() == {
            "state": CLOSED,
            "opens": 1,
            "probes": 1,
            "closes": 1,
        }


class TestJitter:
    def test_jittered_cooldown_is_seeded_and_bounded(self):
        def reopen(seed):
            b = CircuitBreaker(
                "dev",
                failure_threshold=1,
                cooldown=2.0,
                jitter=0.25,
                streams=RandomStreams(seed),
            )
            b.record_failure(10.0)
            return b.reopen_at

        assert reopen(5) == reopen(5)
        assert reopen(5) != reopen(6)
        assert 10.0 + 2.0 * 0.75 <= reopen(5) <= 10.0 + 2.0 * 1.25

    def test_zero_jitter_is_exact(self):
        b = breaker(jitter=0.0)
        b.force_open(1.0)
        assert b.reopen_at == 3.0
