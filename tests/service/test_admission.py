"""Bounded admission queue and its three shed policies."""

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import AdmissionQueue
from repro.service.jobs import Job, JobStatus


def job(job_id, *, priority=0, arrival=None):
    return Job(
        job_id=job_id,
        tenant=0,
        template=0,
        priority=priority,
        arrival=float(job_id) if arrival is None else arrival,
        units=100,
    )


class TestAdmissionQueue:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(4, "coin-flip")

    def test_admits_until_full(self):
        q = AdmissionQueue(2)
        assert q.offer(job(0), 0.0) == []
        assert q.offer(job(1), 0.1) == []
        assert q.full and q.depth() == 2 and q.max_depth == 2
        assert q.admitted == 2

    def test_reject_bounces_the_newcomer(self):
        q = AdmissionQueue(1, "reject")
        q.offer(job(0), 0.0)
        loser = job(1)
        assert q.offer(loser, 0.5) == [loser]
        assert loser.status is JobStatus.REJECTED
        assert loser.finished_at == 0.5
        assert q.rejected == 1 and q.shed == 0
        assert q.pop().job_id == 0

    def test_drop_oldest_evicts_the_head(self):
        q = AdmissionQueue(2, "drop-oldest")
        q.offer(job(0), 0.0)
        q.offer(job(1), 0.1)
        losers = q.offer(job(2), 0.2)
        assert [j.job_id for j in losers] == [0]
        assert losers[0].status is JobStatus.SHED
        assert q.shed == 1 and q.rejected == 0
        assert [q.pop().job_id, q.pop().job_id] == [1, 2]

    def test_priority_shed_evicts_only_when_outranked(self):
        q = AdmissionQueue(2, "priority-shed")
        q.offer(job(0, priority=1), 0.0)
        q.offer(job(1, priority=2), 0.1)
        # equal-or-lower priority newcomer is rejected, queue untouched
        bounced = q.offer(job(2, priority=1), 0.2)
        assert bounced[0].job_id == 2
        assert bounced[0].status is JobStatus.REJECTED
        # an outranking newcomer evicts the lowest-priority waiter
        losers = q.offer(job(3, priority=2), 0.3)
        assert [j.job_id for j in losers] == [0]
        assert losers[0].status is JobStatus.SHED
        assert [q.pop().job_id, q.pop().job_id] == [1, 3]

    def test_priority_shed_breaks_ties_by_age(self):
        q = AdmissionQueue(2, "priority-shed")
        q.offer(job(0, priority=0, arrival=0.0), 0.0)
        q.offer(job(1, priority=0, arrival=0.1), 0.1)
        losers = q.offer(job(2, priority=1), 0.2)
        assert [j.job_id for j in losers] == [0]

    def test_shed_only_when_full_invariant_clean_in_normal_use(self):
        q = AdmissionQueue(3, "drop-oldest")
        for i in range(10):
            q.offer(job(i), float(i))
        assert q.violations == []
        assert q.shed == 7
        assert q.depth() == 3
