"""Serve chaos campaign: baselines, faulted episodes, scoring."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.campaign import ServeChaosConfig, run_serve_campaign

QUICK = dict(
    policies=("plb-hec", "fair"),
    runs=2,
    rate=3.0,
    duration=6.0,
    max_faults=1,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServeChaosConfig(policies=())
        with pytest.raises(ConfigurationError):
            ServeChaosConfig(policies=("astrology",))
        with pytest.raises(ConfigurationError):
            ServeChaosConfig(runs=0)

    def test_service_config_carries_the_knobs(self):
        config = ServeChaosConfig(**QUICK, seed=1)
        sc = config.service_config("fair")
        assert sc.policy == "fair"
        assert sc.arrivals.rate == 3.0
        assert sc.queue_limit == config.queue_limit


class TestCampaign:
    def test_quick_campaign_survives_with_invariants(self):
        scorecard = run_serve_campaign(
            ServeChaosConfig(**QUICK, seed=0), jobs=1
        )
        assert scorecard["total_runs"] == 2
        assert scorecard["survived_runs"] == 2
        assert scorecard["all_invariants_ok"]
        for record in scorecard["runs"]:
            assert record["faults"], "chaos phase must inject faults"
            assert record["baseline_goodput"] > 0
            assert record["violations"] == []
        for agg in scorecard["policies"].values():
            assert agg["survival_rate"] == 1.0

    def test_campaign_is_deterministic(self):
        one = run_serve_campaign(ServeChaosConfig(**QUICK, seed=7), jobs=1)
        two = run_serve_campaign(ServeChaosConfig(**QUICK, seed=7), jobs=1)
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))
