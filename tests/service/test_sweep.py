"""Service episodes flowing through the parallel sweep engine."""

import json

from repro.experiments.parallel import (
    PointSpec,
    ResultCache,
    RunSpec,
    SweepStats,
    run_sweep,
)
from repro.service import ServiceConfig, validate_scorecard
from repro.service.arrivals import ArrivalSpec


def service_point(seed=0, policy="plb-hec"):
    config = ServiceConfig(
        arrivals=ArrivalSpec(rate=3.0, duration=6.0),
        policy=policy,
    )
    return PointSpec(
        app_name="serve",
        size=0,
        num_machines=2,
        policies=(policy,),
        replications=1,
        seed=seed,
        service_json=config.to_sweep_json(),
    )


class TestServiceSweep:
    def test_payload_carries_the_scorecard(self):
        stats = SweepStats()
        run_sweep([service_point()], jobs=1, stats=stats)
        (payload,) = stats.payloads
        card = payload["serve"]
        assert validate_scorecard(card) == []
        assert payload["makespan"] == card["duration_s"]
        assert payload["series"]["samples"] > 0
        assert payload["series"]["store"]["series"]
        assert payload["report"]["run_id"]

    def test_cache_cold_then_warm_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SweepStats()
        run_sweep([service_point()], jobs=1, cache=cache, stats=cold)
        assert cold.executed == 1
        warm = SweepStats()
        run_sweep([service_point()], jobs=1, cache=cache, stats=warm)
        assert warm.cache_hits == 1
        assert (json.dumps(cold.payloads, sort_keys=True)
                == json.dumps(warm.payloads, sort_keys=True))

    def test_cache_key_sees_the_service_config(self):
        base = RunSpec("serve", 0, 2, "plb-hec", 0, 0.0, None)
        plb = service_point().expand()[0]
        fair = service_point(policy="fair").expand()[0]
        keys = {
            ResultCache.key(base, "tag"),
            ResultCache.key(plb, "tag"),
            ResultCache.key(fair, "tag"),
        }
        assert len(keys) == 3
