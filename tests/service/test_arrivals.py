"""Seeded open-loop arrival generation."""

import pytest

from repro.errors import ConfigurationError
from repro.service.arrivals import ArrivalSpec, generate_arrivals
from repro.sim.random import RandomStreams


class TestArrivalSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(rate=0.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(duration=0.0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(pattern="tidal")
        with pytest.raises(ConfigurationError):
            ArrivalSpec(tenants=0)
        with pytest.raises(ConfigurationError):
            ArrivalSpec(templates=())
        with pytest.raises(ConfigurationError):
            ArrivalSpec(priority_levels=0)

    def test_dict_roundtrip(self):
        spec = ArrivalSpec(rate=3.0, duration=8.0, pattern="bursty", tenants=4)
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec

    def test_rate_modulation(self):
        diurnal = ArrivalSpec(rate=2.0, duration=10.0, pattern="diurnal")
        rates = [diurnal.rate_at(t) for t in (0.0, 2.5, 7.5)]
        assert rates[1] > rates[0] > rates[2]
        bursty = ArrivalSpec(rate=2.0, duration=8.0, pattern="bursty")
        # period = 1s, 25% on at 3x, off at 0.5x
        assert bursty.rate_at(0.1) == pytest.approx(6.0)
        assert bursty.rate_at(0.9) == pytest.approx(1.0)
        constant = ArrivalSpec(rate=2.0, duration=8.0)
        assert constant.rate_at(3.3) == 2.0


class TestGenerateArrivals:
    def test_equal_seeds_identical_traces(self):
        spec = ArrivalSpec(rate=4.0, duration=10.0, pattern="diurnal")
        one = generate_arrivals(spec, RandomStreams(11))
        two = generate_arrivals(spec, RandomStreams(11))
        assert one == two
        assert generate_arrivals(spec, RandomStreams(12)) != one

    def test_trace_is_well_formed(self):
        spec = ArrivalSpec(rate=5.0, duration=20.0, tenants=3)
        arrivals = generate_arrivals(spec, RandomStreams(0))
        assert arrivals, "a 20s horizon at 5/s should produce arrivals"
        last = 0.0
        for i, arr in enumerate(arrivals):
            assert arr.job_id == i
            assert last < arr.time < spec.duration
            assert 0 <= arr.tenant < spec.tenants
            assert 0 <= arr.template < len(spec.templates)
            assert 0 <= arr.priority < spec.priority_levels
            last = arr.time

    def test_mean_rate_tracks_spec(self):
        spec = ArrivalSpec(rate=6.0, duration=50.0)
        n = len(generate_arrivals(spec, RandomStreams(3)))
        assert 0.7 * 300 < n < 1.3 * 300

    def test_bursty_clusters_arrivals(self):
        spec = ArrivalSpec(rate=4.0, duration=16.0, pattern="bursty")
        arrivals = generate_arrivals(spec, RandomStreams(1))
        period = spec.duration / 8
        on = sum(1 for a in arrivals if (a.time % period) / period < 0.25)
        # the on-phase covers 25% of the horizon at 3x the off rate: its
        # arrival share must clearly exceed its time share
        assert on / len(arrivals) > 0.35
