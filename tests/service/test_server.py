"""The serving loop end to end: determinism, overload, deadlines, faults."""

import json

import pytest

from repro.errors import SimulationError
from repro.runtime.sim_executor import (
    DeviceFailure,
    TransferFault,
    TransientFailure,
)
from repro.service import ClusterService, ServiceConfig, validate_scorecard
from repro.service.arrivals import ArrivalSpec
from repro.service.jobs import JobStatus


def run_episode(**overrides):
    arrivals = overrides.pop(
        "arrivals", ArrivalSpec(rate=2.0, duration=8.0)
    )
    service = ClusterService(ServiceConfig(arrivals=arrivals, **overrides))
    return service, service.run()


class TestHealthyEpisode:
    def test_all_jobs_complete_and_scorecard_validates(self):
        service, card = run_episode(seed=3)
        assert validate_scorecard(card) == []
        assert card["invariant_errors"] == []
        assert card["jobs"]["completed"] == card["jobs"]["submitted"] > 0
        assert card["latency_s"]["p99"] is not None
        assert card["goodput"]["jobs_per_s"] > 0
        assert len(service.engine.queue) == 0

    def test_conservation_of_jobs(self):
        _, card = run_episode(seed=5, queue_limit=2, shed_policy="drop-oldest",
                              arrivals=ArrivalSpec(rate=8.0, duration=6.0))
        jobs = card["jobs"]
        terminal = (jobs["completed"] + jobs["rejected"] + jobs["shed"]
                    + jobs["timeout"] + jobs["failed"])
        assert terminal == jobs["submitted"]

    def test_single_use(self):
        service, _ = run_episode(seed=0)
        with pytest.raises(SimulationError, match="single-use"):
            service.run()


class TestDeterminism:
    def test_equal_seeds_byte_identical_scorecards(self):
        _, one = run_episode(seed=11, noise_sigma=0.02)
        _, two = run_episode(seed=11, noise_sigma=0.02)
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))

    def test_different_seeds_differ(self):
        _, one = run_episode(seed=11)
        _, two = run_episode(seed=12)
        assert (json.dumps(one, sort_keys=True)
                != json.dumps(two, sort_keys=True))


class TestOverload:
    def test_shedding_keeps_p99_bounded(self):
        """2x+ overload: the bounded queue sheds instead of queueing,
        so admitted-job latency stays bounded by (queue depth + active)
        service times rather than growing with the arrival backlog."""
        arrivals = ArrivalSpec(rate=12.0, duration=10.0)
        _, card = run_episode(
            arrivals=arrivals, seed=3, queue_limit=8,
            shed_policy="drop-oldest",
        )
        jobs = card["jobs"]
        assert jobs["shed"] > 0, "overload must shed"
        assert jobs["completed"] > 0
        # worst admitted wait ~ (queue limit + active) jobs ahead at the
        # slowest template's ideal pace; far below the ~40s an unbounded
        # queue would reach by the end of the horizon
        assert card["latency_s"]["p99"] < 8.0
        assert card["admission"]["max_depth"] <= 8
        assert card["invariant_errors"] == []

    def test_priority_shed_protects_high_priority(self):
        arrivals = ArrivalSpec(rate=12.0, duration=8.0)
        service, card = run_episode(
            arrivals=arrivals, seed=3, queue_limit=4,
            shed_policy="priority-shed",
        )
        assert card["jobs"]["shed"] + card["jobs"]["rejected"] > 0
        shed_jobs = [j for j in service.jobs if j.status is JobStatus.SHED]
        if shed_jobs:
            worst = max(j.priority for j in shed_jobs)
            assert worst < service.config.arrivals.priority_levels - 1 or any(
                j.priority > worst for j in service.jobs
            )


class TestDeadlines:
    def test_deadline_reclaims_in_flight_blocks(self):
        # deadline tighter than one job's service time under overload:
        # some jobs time out; their in-flight events are cancelled, so
        # the engine still drains to an empty queue
        arrivals = ArrivalSpec(rate=8.0, duration=6.0)
        service, card = run_episode(
            arrivals=arrivals, seed=2, deadline_factor=1.5, queue_limit=6,
            shed_policy="drop-oldest",
        )
        assert card["jobs"]["timeout"] > 0
        for job in service.jobs:
            if job.status is JobStatus.TIMEOUT:
                assert job.in_flight == {}
                assert job.deadline is not None
                assert job.finished_at == pytest.approx(job.deadline)
        assert len(service.engine.queue) == 0
        assert card["invariant_errors"] == []

    def test_generous_deadline_never_fires(self):
        _, card = run_episode(seed=3, deadline_factor=100.0)
        assert card["jobs"]["timeout"] == 0


class TestFaultsAndRetries:
    def test_transient_failure_opens_then_recloses_breaker(self):
        service, card = run_episode(
            seed=4, arrivals=ArrivalSpec(rate=3.0, duration=10.0),
            faults=(TransientFailure("A.gpu0", 3.0, 2.0),),
        )
        b = card["breakers"]["A.gpu0"]
        assert b["opens"] >= 1
        assert b["state"] in ("closed", "half-open")
        assert card["invariant_errors"] == []

    def test_permanent_failure_keeps_breaker_open(self):
        service, card = run_episode(
            seed=4, arrivals=ArrivalSpec(rate=3.0, duration=8.0),
            faults=(DeviceFailure("B.cpu", 2.0),),
        )
        assert card["breakers"]["B.cpu"]["state"] == "open"
        # no block may complete on a downed device
        assert card["invariant_errors"] == []

    def test_retry_budget_exhaustion_fails_jobs(self):
        # a transfer fault window wide enough that retries keep losing
        # blocks; a tiny budget must eventually fail a job, not loop
        service, card = run_episode(
            seed=4, retry_budget=1,
            arrivals=ArrivalSpec(rate=3.0, duration=8.0),
            faults=(TransferFault("A.gpu0", 1.0, 30.0, max_retries=1),),
        )
        assert card["retries"]["consumed"]
        assert card["jobs"]["failed"] >= 1
        assert card["retries"]["budget_exhausted_jobs"] >= 1
        assert card["invariant_errors"] == []

    def test_all_devices_dead_starves_cleanly(self):
        service, card = run_episode(
            seed=1, machines=1,
            arrivals=ArrivalSpec(rate=2.0, duration=6.0),
            faults=(DeviceFailure("A.cpu", 1.0),
                    DeviceFailure("A.gpu0", 1.0)),
        )
        jobs = card["jobs"]
        terminal = (jobs["completed"] + jobs["rejected"] + jobs["shed"]
                    + jobs["timeout"] + jobs["failed"])
        assert terminal == jobs["submitted"]
        assert jobs["failed"] > 0
        assert len(service.engine.queue) == 0


class TestTelemetry:
    def test_series_cover_the_serving_loop(self):
        service, _ = run_episode(seed=3)
        keys = service.store.keys()
        for expected in (
            "serve_queue_depth", "serve_active_jobs", "serve_backlog_jobs",
            "serve_goodput_jobs_per_s", "serve_completed_total",
            "serve_job_latency_s", "serve_device_busy",
        ):
            assert any(expected in key for key in keys), (expected, keys)

    def test_final_sample_sees_drained_state(self):
        # _finish records a closing sample, so last(...) SLO aggregates
        # judge the drained state, not the last periodic tick's
        service, _ = run_episode(seed=3)
        backlog = service.store.points("serve_backlog_jobs")
        assert backlog and backlog[-1][1] == 0.0
        depth = service.store.points("serve_queue_depth")
        assert depth[-1][1] == 0.0
