"""Continuous balancer: cycles, fallback chain, fairness, block sizing."""

import pytest

from repro.errors import ConfigurationError, SolverError
from repro.service.balancer import FALLBACK_STAGES, ContinuousBalancer
from repro.service.jobs import Job

DEVICES = ("a.cpu", "a.gpu", "b.cpu")


def feed(balancer, rates, *, template=0, tenant=0, rounds=3):
    """Record ``rounds`` blocks per device at the given units/sec rates."""
    for _ in range(rounds):
        for device, rate in rates.items():
            balancer.record(device, template, tenant, int(rate), 0.8, 0.2)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContinuousBalancer(())
        with pytest.raises(ConfigurationError):
            ContinuousBalancer(DEVICES, flavor="astrology")

    def test_starts_uniform(self):
        b = ContinuousBalancer(DEVICES)
        assert b.fractions == {d: pytest.approx(1 / 3) for d in DEVICES}


class TestFlavors:
    def test_fair_stays_uniform(self):
        b = ContinuousBalancer(DEVICES, flavor="fair")
        feed(b, {"a.cpu": 10, "a.gpu": 90, "b.cpu": 10})
        assert b.rebalance(1.0, {0: 500}) == "fair-share"
        assert b.fractions == {d: pytest.approx(1 / 3) for d in DEVICES}

    def test_greedy_follows_measured_rates(self):
        b = ContinuousBalancer(DEVICES, flavor="greedy")
        feed(b, {"a.cpu": 10, "a.gpu": 80, "b.cpu": 10})
        assert b.rebalance(1.0, {0: 500}) == "analytic"
        assert b.fractions["a.gpu"] == pytest.approx(0.8)

    def test_plb_hec_solves_once_profiled(self):
        b = ContinuousBalancer(DEVICES)
        feed(b, {"a.cpu": 10, "a.gpu": 80, "b.cpu": 10}, rounds=4)
        stage = b.rebalance(1.0, {0: 500})
        assert stage == "solve"
        assert sum(b.fractions.values()) == pytest.approx(1.0)
        assert b.fractions["a.gpu"] > b.fractions["a.cpu"]

    def test_empty_backlog_resets_to_fair(self):
        b = ContinuousBalancer(DEVICES)
        assert b.rebalance(0.5, {}) == "fair-share"


class TestFallbackChain:
    """solve -> last-good -> analytic -> fair-share, re-enterable."""

    def test_unprofiled_falls_to_fair_share(self):
        b = ContinuousBalancer(DEVICES)
        # no observations at all: fit raises, no last-good, no rates
        assert b.rebalance(1.0, {0: 100}) == "fair-share"
        assert b.fallback_counts["fair-share"] == 1

    def test_solver_failure_uses_last_good_then_recovers(self):
        calls = {"fail": False}

        def hook(models, total):
            if calls["fail"]:
                raise SolverError("induced")
            n = len(models)
            return {d: 1.0 / n for d in models}

        b = ContinuousBalancer(DEVICES, solver_hook=hook)
        feed(b, {"a.cpu": 10, "a.gpu": 80, "b.cpu": 10}, rounds=4)
        assert b.rebalance(1.0, {0: 100}) == "solve"
        good = dict(b.fractions)

        calls["fail"] = True
        assert b.rebalance(2.0, {0: 100}) == "last-good"
        assert b.fractions == good
        # the chain is re-enterable, not latched
        assert b.rebalance(3.0, {0: 100}) == "last-good"

        calls["fail"] = False
        assert b.rebalance(4.0, {0: 100}) == "solve"
        assert b.fallback_counts == {
            "solve": 2, "last-good": 2, "analytic": 0, "fair-share": 0,
        }

    def test_last_good_never_aliases_live_fractions(self):
        """Mutating the live fractions must not corrupt the stash."""
        def hook(models, total):
            n = len(models)
            return {d: 1.0 / n for d in models}

        b = ContinuousBalancer(DEVICES, solver_hook=hook)
        feed(b, {"a.cpu": 10, "a.gpu": 80, "b.cpu": 10}, rounds=4)
        b.rebalance(1.0, {0: 100})
        stash = dict(b._last_good)
        b.fractions["a.cpu"] = 99.0  # simulated downstream clobber
        b.solver_hook = lambda models, total: (_ for _ in ()).throw(
            SolverError("induced")
        )
        assert b.rebalance(2.0, {0: 100}) == "last-good"
        assert b.fractions == stash

    def test_without_last_good_falls_to_analytic(self):
        def hook(models, total):
            raise SolverError("always")

        b = ContinuousBalancer(DEVICES, solver_hook=hook)
        feed(b, {"a.cpu": 10, "a.gpu": 80, "b.cpu": 10}, rounds=4)
        assert b.rebalance(1.0, {0: 100}) == "analytic"
        assert b.fractions["a.gpu"] == pytest.approx(0.8)

    def test_stage_names_are_the_published_chain(self):
        assert FALLBACK_STAGES == ("solve", "last-good", "analytic",
                                   "fair-share")


class TestDispatchQueries:
    def job(self, job_id, tenant, *, priority=0, arrival=0.0, remaining=50):
        return Job(
            job_id=job_id, tenant=tenant, template=0, priority=priority,
            arrival=arrival, units=100, remaining=remaining,
        )

    def test_pick_job_weighted_fair_by_tenant(self):
        b = ContinuousBalancer(DEVICES)
        b.record("a.cpu", 0, 0, 500, 1.0, 0.0)  # tenant 0 far ahead
        jobs = [self.job(0, tenant=0), self.job(1, tenant=1)]
        assert b.pick_job(jobs).tenant == 1

    def test_pick_job_priority_then_age_within_tenant(self):
        b = ContinuousBalancer(DEVICES)
        jobs = [
            self.job(0, 0, priority=0, arrival=0.0),
            self.job(1, 0, priority=2, arrival=1.0),
            self.job(2, 0, priority=2, arrival=0.5),
        ]
        assert b.pick_job(jobs).job_id == 2

    def test_pick_job_skips_finished(self):
        b = ContinuousBalancer(DEVICES)
        finished = self.job(0, 0)
        finished.remaining = 0
        assert b.pick_job([finished]) is None

    def test_block_units_unmeasured_uses_probe_default(self):
        b = ContinuousBalancer(DEVICES)
        assert b.block_units("a.cpu", 0, remaining=1000, quantum=0.5,
                             default_units=64) == 64

    def test_block_units_scales_with_rate_and_share(self):
        b = ContinuousBalancer(DEVICES)
        feed(b, {"a.gpu": 100}, rounds=3)
        units = b.block_units("a.gpu", 0, remaining=10_000, quantum=1.0,
                              default_units=8)
        # rate 100 u/s, uniform share (1/3 * 3 = 1): ~100 units
        assert units == 100

    def test_block_units_clamped_to_remaining(self):
        b = ContinuousBalancer(DEVICES)
        feed(b, {"a.gpu": 100}, rounds=3)
        assert b.block_units("a.gpu", 0, remaining=7, quantum=1.0,
                             default_units=8) == 7
