"""Smoke tests: every example script runs to completion and verifies.

Examples are part of the public deliverable; these tests execute each
script in a subprocess and check its exit code and key output markers.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"

CASES = [
    ("quickstart.py", ["plb-hec", "speedup"]),
    ("matmul_cluster.py", ["matches reference: True", "speedup"]),
    ("blackscholes_market.py", ["verified: True", "crossover"]),
    ("grn_inference.py", ["brute force: True", "plb_hec_s"]),
    ("cloud_rebalance.py", ["rebalancing on", "rebalancing off"]),
    ("fault_tolerance.py", ["post-failure distribution", "failures"]),
]


@pytest.mark.slow
@pytest.mark.parametrize("script,markers", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, markers):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for marker in markers:
        assert marker in proc.stdout, (
            f"{script} output missing {marker!r}:\n{proc.stdout[-2000:]}"
        )
