"""Property-based tests for the modeling layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modeling import PerfProfile, fit_basis_model, select_model
from repro.modeling.basis import CONSTANT, LINEAR
from repro.modeling.transfer import fit_transfer_model

# strategies -----------------------------------------------------------

positive_slope = st.floats(1e-6, 1e2)
intercept = st.floats(0.0, 10.0)
sizes_strategy = st.lists(
    st.integers(1, 100_000), min_size=3, max_size=12, unique=True
)


class TestLeastSquaresProperties:
    @given(sizes_strategy, positive_slope, intercept)
    @settings(max_examples=50, deadline=None)
    def test_affine_data_fit_exactly(self, sizes, slope, b):
        x = np.array(sorted(sizes), dtype=float)
        y = b + slope * x
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR))
        assert np.allclose(np.asarray(fit.predict(x)), y, rtol=1e-6, atol=1e-9)

    @given(sizes_strategy, positive_slope, intercept)
    @settings(max_examples=50, deadline=None)
    def test_r2_in_unit_interval_for_own_fit(self, sizes, slope, b):
        x = np.array(sorted(sizes), dtype=float)
        y = b + slope * x
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR))
        assert -1e-9 <= fit.r2 <= 1.0 + 1e-9

    @given(
        sizes_strategy,
        positive_slope,
        intercept,
        st.floats(0.0, 0.05),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_selected_model_positive_on_noisy_affine(
        self, sizes, slope, b, sigma, seed
    ):
        """Whatever select_model picks must stay positive over 4x range."""
        rng = np.random.default_rng(seed)
        x = np.array(sorted(sizes), dtype=float)
        y = (b + 1e-3 + slope * x) * np.exp(rng.normal(0, sigma, x.size))
        fit = select_model(x, y)
        grid = np.linspace(x.max() * 1e-3, x.max() * 4, 64)
        assert np.all(np.asarray(fit.predict(grid)) > 0.0)


class TestTransferProperties:
    @given(sizes_strategy, st.floats(1e-9, 1e-2), st.floats(0.0, 0.1))
    @settings(max_examples=50, deadline=None)
    def test_transfer_coefficients_nonnegative(self, sizes, slope, lat):
        x = np.array(sorted(sizes), dtype=float)
        fit = fit_transfer_model(x, lat + slope * x)
        assert fit.slope >= 0.0
        assert fit.intercept >= 0.0

    @given(sizes_strategy, st.floats(1e-9, 1e-2), st.floats(1e-6, 0.1))
    @settings(max_examples=50, deadline=None)
    def test_transfer_prediction_monotone(self, sizes, slope, lat):
        x = np.array(sorted(sizes), dtype=float)
        fit = fit_transfer_model(x, lat + slope * x)
        grid = np.linspace(1, x.max() * 2, 32)
        vals = np.asarray(fit.predict(grid))
        assert np.all(np.diff(vals) >= -1e-12)


class TestDeviceModelProperties:
    @given(
        positive_slope,
        st.floats(1e-3, 5.0),
        st.floats(0.1, 0.9),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_invert_is_partial_inverse(self, slope, b, frac, seed):
        """For monotone models, E(invert(t)) ~ t within tolerance."""
        rng = np.random.default_rng(seed)
        prof = PerfProfile("d")
        sizes = np.unique(rng.integers(1, 10_000, size=6))
        if sizes.size < 3:
            sizes = np.array([10, 100, 1000])
        for u in sizes:
            prof.add(int(u), b + slope * u, 1e-6 * u)
        model = prof.fit()
        x_hi = float(sizes.max()) * 2
        target = float(model.E(x_hi)) * frac
        x = model.invert(target, x_hi)
        if 0.0 < x < x_hi:
            assert float(model.E(x)) == pytest.approx(target, rel=0.05)
