"""Tests for repro.modeling.basis."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.modeling.basis import (
    ALL_BASIS,
    CANDIDATE_MODELS,
    CONSTANT,
    CUBE,
    EXP,
    LINEAR,
    LOG,
    PAPER_BASIS,
    SQRT,
    SQUARE,
    X_EXP,
    X_LOG,
    basis_by_name,
)


class TestBasisValues:
    U = np.array([0.1, 0.5, 1.0, 2.0])

    def test_constant(self):
        assert np.allclose(CONSTANT(self.U), 1.0)

    def test_linear(self):
        assert np.allclose(LINEAR(self.U), self.U)

    def test_square(self):
        assert np.allclose(SQUARE(self.U), self.U**2)

    def test_cube(self):
        assert np.allclose(CUBE(self.U), self.U**3)

    def test_sqrt(self):
        assert np.allclose(SQRT(self.U), np.sqrt(self.U))

    def test_log(self):
        assert np.allclose(LOG(self.U), np.log(self.U))

    def test_exp(self):
        assert np.allclose(EXP(self.U), np.exp(self.U))

    def test_x_exp(self):
        assert np.allclose(X_EXP(self.U), self.U * np.exp(self.U))

    def test_x_log(self):
        assert np.allclose(X_LOG(self.U), self.U * np.log(self.U))

    def test_log_at_zero_finite(self):
        assert np.isfinite(LOG(np.array([0.0]))).all()

    def test_x_log_at_zero_finite(self):
        assert np.isfinite(X_LOG(np.array([0.0]))).all()


class TestDerivatives:
    """Analytic derivatives must match finite differences."""

    U = np.array([0.2, 0.7, 1.3])
    H = 1e-6

    @pytest.mark.parametrize("basis", ALL_BASIS, ids=lambda b: b.name)
    def test_first_derivative(self, basis):
        numeric = (basis.f(self.U + self.H) - basis.f(self.U - self.H)) / (2 * self.H)
        assert np.allclose(basis.df(self.U), numeric, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("basis", ALL_BASIS, ids=lambda b: b.name)
    def test_second_derivative(self, basis):
        numeric = (
            basis.f(self.U + self.H) - 2 * basis.f(self.U) + basis.f(self.U - self.H)
        ) / self.H**2
        assert np.allclose(basis.d2f(self.U), numeric, rtol=1e-3, atol=1e-2)


class TestFamilies:
    def test_paper_family_has_eight_members(self):
        assert len(PAPER_BASIS) == 8
        names = {b.name for b in PAPER_BASIS}
        assert names == {
            "ln x", "x", "x^2", "x^3", "e^x", "sqrt x", "x e^x", "x ln x",
        }

    def test_all_basis_adds_constant(self):
        assert len(ALL_BASIS) == 9
        assert CONSTANT in ALL_BASIS

    def test_candidates_subsets_of_family(self):
        for cand in CANDIDATE_MODELS:
            assert set(cand) <= set(ALL_BASIS)

    def test_candidates_unique_names_within(self):
        for cand in CANDIDATE_MODELS:
            names = [b.name for b in cand]
            assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert basis_by_name("x^2") is SQUARE
        assert basis_by_name("ln x") is LOG

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            basis_by_name("x^9")
