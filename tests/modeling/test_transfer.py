"""Tests for repro.modeling.transfer."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.modeling.transfer import fit_transfer_model


class TestFitTransferModel:
    def test_recovers_affine(self):
        x = np.array([10.0, 100.0, 1000.0])
        y = 2e-4 + 3e-6 * x
        fit = fit_transfer_model(x, y)
        assert fit.slope == pytest.approx(3e-6, rel=1e-9)
        assert fit.intercept == pytest.approx(2e-4, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_predict_scalar_and_vector(self):
        fit = fit_transfer_model([1.0, 2.0], [1.0, 2.0])
        assert isinstance(fit.predict(3.0), float)
        out = fit.predict(np.array([1.0, 2.0]))
        assert isinstance(out, np.ndarray)

    def test_derivative_is_slope(self):
        fit = fit_transfer_model([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert fit.derivative(10.0) == pytest.approx(fit.slope)
        vec = fit.derivative(np.array([1.0, 5.0]))
        assert np.allclose(vec, fit.slope)

    def test_single_point_through_origin(self):
        fit = fit_transfer_model([100.0], [0.5])
        assert fit.intercept == 0.0
        assert fit.slope == pytest.approx(0.005)

    def test_identical_x_through_origin(self):
        fit = fit_transfer_model([10.0, 10.0], [0.1, 0.2])
        assert fit.slope == pytest.approx(0.015)
        assert fit.intercept == 0.0

    def test_negative_slope_clamped(self):
        # noisy decreasing data cannot produce negative bandwidth
        fit = fit_transfer_model([1.0, 2.0, 3.0], [3.0, 2.0, 1.0])
        assert fit.slope == 0.0

    def test_negative_intercept_clamped(self):
        fit = fit_transfer_model([10.0, 20.0], [0.5, 1.5])
        assert fit.intercept >= 0.0

    def test_empty_rejected(self):
        with pytest.raises(FitError):
            fit_transfer_model([], [])

    def test_mismatched_rejected(self):
        with pytest.raises(FitError):
            fit_transfer_model([1.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(FitError):
            fit_transfer_model([1.0, 2.0], [float("nan"), 1.0])

    def test_nonpositive_x_rejected(self):
        with pytest.raises(FitError):
            fit_transfer_model([0.0, 1.0], [1.0, 2.0])

    def test_describe(self):
        fit = fit_transfer_model([1.0, 2.0], [1.0, 2.0])
        assert "G[x]" in fit.describe()
