"""Tests for repro.modeling.perf_profile."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.modeling.perf_profile import DeviceModel, PerfProfile, ProfilePoint


def linear_profile(slope=0.01, intercept=0.5, xfer_slope=1e-5, sizes=(8, 16, 64, 256, 1024)):
    prof = PerfProfile("dev")
    for u in sizes:
        prof.add(u, intercept + slope * u, xfer_slope * u)
    return prof


class TestProfilePoint:
    def test_nonpositive_units_rejected(self):
        with pytest.raises(FitError):
            ProfilePoint(units=0, exec_s=1.0, transfer_s=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FitError):
            ProfilePoint(units=1, exec_s=-1.0, transfer_s=0.0)


class TestPerfProfile:
    def test_add_and_len(self):
        prof = linear_profile()
        assert len(prof) == 5

    def test_observed_sizes_sorted_unique(self):
        prof = PerfProfile("d")
        for u in (16, 8, 16):
            prof.add(u, 1.0, 0.0)
        assert list(prof.observed_sizes()) == [8.0, 16.0]

    def test_fit_requires_two_points(self):
        prof = PerfProfile("d")
        prof.add(8, 1.0, 0.1)
        with pytest.raises(FitError, match=">= 2"):
            prof.fit()

    def test_fit_returns_model(self):
        model = linear_profile().fit()
        assert isinstance(model, DeviceModel)
        assert model.device_id == "dev"
        assert model.r2 > 0.999

    def test_clear(self):
        prof = linear_profile()
        prof.clear()
        assert len(prof) == 0

    def test_per_size_dedupe_keeps_range(self):
        prof = PerfProfile("d", max_points=32)
        # probe diversity first
        for u in (8, 64, 512):
            prof.add(u, 0.01 * u, 0.0)
        # then hundreds of identical-size steady-state tasks
        for _ in range(500):
            prof.add(100, 1.0, 0.0)
        sizes = prof.observed_sizes()
        assert 8.0 in sizes and 512.0 in sizes
        same = sum(1 for p in prof.points if p.units == 100)
        assert same <= PerfProfile.PER_SIZE_LIMIT

    def test_window_evicts_most_populous_size(self):
        prof = PerfProfile("d", max_points=6)
        for u in (8, 16, 32, 64):
            prof.add(u, 0.01 * u, 0.0)
        for i in range(4):
            prof.add(128, 1.28, 0.0)
        # window size respected and all distinct sizes retained
        assert len(prof) <= 6
        assert set(prof.observed_sizes()) >= {8.0, 16.0, 32.0, 64.0}

    def test_recency_decay_validation(self):
        prof = linear_profile()
        with pytest.raises(FitError):
            prof.fit(recency_decay=0.0)
        with pytest.raises(FitError):
            prof.fit(recency_decay=1.5)

    def test_recency_decay_tracks_regime_change(self):
        prof = PerfProfile("d")
        # old regime: fast
        for u in (100, 200, 400):
            prof.add(u, 0.001 * u, 0.0)
        # new regime: 4x slower, same sizes
        for u in (100, 200, 400):
            prof.add(u, 0.004 * u, 0.0)
        fresh = prof.fit(recency_decay=0.3)
        stale = prof.fit(recency_decay=1.0)
        assert float(fresh.E(400)) > float(stale.E(400))

    def test_max_points_validation(self):
        with pytest.raises(FitError):
            PerfProfile("d", max_points=1)


class TestDeviceModel:
    @pytest.fixture
    def model(self):
        return linear_profile().fit()

    def test_E_is_F_plus_G(self, model):
        x = 100.0
        assert float(model.E(x)) == pytest.approx(
            float(model.F(x)) + float(model.G(x)), rel=1e-9
        )

    def test_E_floored_positive(self, model):
        assert float(model.E(0.0)) > 0.0

    def test_dE_matches_finite_difference(self, model):
        h = 1e-4
        numeric = (float(model.E(100 + h)) - float(model.E(100 - h))) / (2 * h)
        assert float(model.dE(100.0)) == pytest.approx(numeric, rel=1e-4)

    def test_rate(self, model):
        assert model.rate(100.0) == pytest.approx(100.0 / float(model.E(100.0)))

    def test_invert_roundtrip(self, model):
        target = float(model.E(300.0))
        x = model.invert(target, 1024.0)
        assert x == pytest.approx(300.0, rel=1e-3)

    def test_invert_whole_range_fits(self, model):
        big_time = float(model.E(1024.0)) * 2
        assert model.invert(big_time, 1024.0) == 1024.0

    def test_invert_nothing_fits(self, model):
        assert model.invert(1e-12, 1024.0) == 0.0

    def test_invert_nonpositive_inputs(self, model):
        assert model.invert(0.0, 100.0) == 0.0
        assert model.invert(1.0, 0.0) == 0.0

    def test_x_max(self, model):
        assert model.x_max == 1024.0

    def test_describe(self, model):
        text = model.describe()
        assert "dev" in text and "G[x]" in text
