"""Tests for repro.modeling.model_select."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.modeling.basis import CONSTANT, CUBE, LINEAR, SQUARE, X_EXP
from repro.modeling.model_select import _is_sane, adjusted_r2, select_model
from repro.modeling.least_squares import fit_basis_model


class TestAdjustedR2:
    def test_penalises_parameters(self):
        assert adjusted_r2(0.9, 10, 5) < adjusted_r2(0.9, 10, 2)

    def test_falls_back_when_undefined(self):
        assert adjusted_r2(0.9, 3, 2) == 0.9
        assert adjusted_r2(0.9, 3, 3) == 0.9

    def test_perfect_fit_stays_one(self):
        assert adjusted_r2(1.0, 10, 3) == pytest.approx(1.0)


class TestIsSane:
    def test_accepts_increasing_positive(self):
        x = np.array([1.0, 10.0, 100.0])
        fit = fit_basis_model(x, 1.0 + 0.5 * x, (CONSTANT, LINEAR))
        assert _is_sane(fit)

    def test_rejects_negative_extrapolation(self):
        # cubic with negative leading coefficient turns down then negative
        x = np.array([1.0, 5.0, 20.0, 60.0, 100.0])
        y = 1.0 + x - 1e-4 * x**3
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, CUBE))
        assert not _is_sane(fit)

    def test_rejects_explosive_growth(self):
        # x*e^x grows ~e^4x over 4x range: way past the quadratic bound
        x = np.array([1.0, 5.0, 20.0, 60.0, 100.0])
        fit = fit_basis_model(x, x * np.exp(x / 100.0), (X_EXP,))
        assert not _is_sane(fit)

    def test_accepts_convex_quadratic(self):
        x = np.array([1.0, 10.0, 50.0, 100.0])
        y = 1.0 + 0.1 * x + 0.001 * x**2
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, SQUARE))
        assert _is_sane(fit)


class TestSelectModel:
    def test_recovers_linear_ground_truth(self):
        x = np.array([8.0, 16.0, 64.0, 256.0, 1024.0])
        y = 0.5 + 0.01 * x
        fit = select_model(x, y)
        assert fit.r2 == pytest.approx(1.0)
        assert abs(fit.predict(512.0) - (0.5 + 5.12)) < 1e-6

    def test_parsimony_prefers_small_model_on_linear_data(self):
        rng = np.random.default_rng(0)
        x = np.array([8.0, 16.0, 64.0, 256.0, 512.0, 1024.0])
        y = (0.5 + 0.01 * x) * np.exp(rng.normal(0, 0.01, x.size))
        fit = select_model(x, y)
        assert len(fit.basis) <= 3

    def test_curved_data_gets_curved_model(self):
        x = np.array([8.0, 16.0, 64.0, 256.0, 512.0, 1024.0])
        y = 0.5 + 0.01 * x + 2e-5 * x**2
        fit = select_model(x, y)
        # prediction must track the curvature, whatever basis was picked
        assert fit.predict(800.0) == pytest.approx(
            0.5 + 8.0 + 2e-5 * 800**2, rel=0.02
        )

    def test_selected_model_is_sane_on_pathological_data(self):
        # strongly convex data whose best unconstrained fits all go
        # negative near zero: the NNLS fallback must keep it physical
        x = np.array([100.0, 200.0, 400.0, 800.0])
        y = 0.001 * x**2
        fit = select_model(x, y)
        grid = np.linspace(1.0, 3200.0, 50)
        assert np.all(np.asarray(fit.predict(grid)) >= 0.0)

    def test_single_point_rejected(self):
        with pytest.raises(FitError):
            select_model([1.0], [1.0])

    def test_two_points_fall_back_to_interpolation(self):
        fit = select_model([10.0, 20.0], [1.0, 2.0])
        assert fit.predict(10.0) == pytest.approx(1.0, rel=1e-6)
        assert fit.predict(20.0) == pytest.approx(2.0, rel=1e-6)

    def test_custom_candidates(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        fit = select_model(x, 3 * x, candidates=[(LINEAR,), (CONSTANT, LINEAR)])
        assert set(fit.names) <= {"1", "x"}

    def test_weights_passed_through(self):
        x = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        y = np.array([1.0, 2.0, 4.0, 8.0, 100.0])
        fit = select_model(x, y, weights=[1, 1, 1, 1, 1e-12])
        assert fit.predict(8.0) == pytest.approx(8.0, rel=0.05)

    def test_flat_data_gets_model(self):
        # intercept-dominated device: times barely vary
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = np.array([1.0, 1.001, 1.002, 1.004])
        fit = select_model(x, y)
        assert fit.rel_rmse < 0.01
