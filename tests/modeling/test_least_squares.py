"""Tests for repro.modeling.least_squares."""

import numpy as np
import pytest

from repro.errors import FitError
from repro.modeling.basis import CONSTANT, LINEAR, LOG, SQUARE
from repro.modeling.least_squares import (
    _relative_rmse,
    fit_basis_model,
    r_squared,
)


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_mean_predictor_scores_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        y_hat = np.full(3, y.mean())
        assert r_squared(y, y_hat) == pytest.approx(0.0)

    def test_constant_target_exact(self):
        y = np.full(4, 2.0)
        assert r_squared(y, y) == 1.0

    def test_constant_target_with_residuals(self):
        y = np.full(4, 2.0)
        assert r_squared(y, y + 0.1) == 0.0

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y[::-1]) < 0.0


class TestRelativeRmse:
    def test_zero_residuals(self):
        y = np.array([1.0, 2.0])
        assert _relative_rmse(y, y) == 0.0

    def test_scale_invariant(self):
        y = np.array([1.0, 2.0])
        a = _relative_rmse(y, y * 1.1)
        b = _relative_rmse(y * 100, y * 110)
        assert a == pytest.approx(b)

    def test_flat_target_meaningful(self):
        # R2 is 0 here, but rel_rmse correctly reports a 1% error
        y = np.full(5, 10.0)
        noisy = y * 1.01
        assert _relative_rmse(y, noisy) == pytest.approx(0.01)


class TestFitBasisModel:
    def test_recovers_linear_coefficients(self):
        x = np.array([10.0, 20.0, 40.0, 80.0])
        y = 3.0 + 0.5 * x
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR))
        assert fit.predict(60.0) == pytest.approx(33.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_recovers_quadratic(self):
        x = np.linspace(1, 100, 10)
        y = 1.0 + 2.0 * x + 0.03 * x**2
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, SQUARE))
        assert fit.predict(55.0) == pytest.approx(1 + 110 + 0.03 * 55**2, rel=1e-8)

    def test_derivative_matches_finite_difference(self):
        x = np.linspace(1, 100, 8)
        y = 5.0 + 0.1 * x + 0.4 * np.log(x / x.max())
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, LOG))
        h = 1e-4
        for at in (10.0, 50.0):
            numeric = (fit.predict(at + h) - fit.predict(at - h)) / (2 * h)
            assert fit.derivative(at) == pytest.approx(numeric, rel=1e-4)

    def test_second_derivative_matches(self):
        x = np.linspace(1, 100, 8)
        y = 0.03 * x**2
        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, SQUARE))
        assert fit.second_derivative(50.0) == pytest.approx(0.06, rel=1e-6)

    def test_vectorised_predict(self):
        x = np.array([1.0, 2.0, 4.0])
        fit = fit_basis_model(x, 2 * x, (LINEAR,))
        out = fit.predict(np.array([1.0, 3.0]))
        assert isinstance(out, np.ndarray)
        assert np.allclose(out, [2.0, 6.0])

    def test_scalar_predict_returns_float(self):
        x = np.array([1.0, 2.0, 4.0])
        fit = fit_basis_model(x, 2 * x, (LINEAR,))
        assert isinstance(fit.predict(2.0), float)

    def test_x_scale_defaults_to_max(self):
        x = np.array([10.0, 1000.0])
        fit = fit_basis_model(x, x, (LINEAR,))
        assert fit.x_scale == 1000.0

    def test_weights_prioritise_points(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([1.0, 2.0, 3.0, 100.0])  # outlier at the end
        balanced = fit_basis_model(x, y, (LINEAR,))
        downweighted = fit_basis_model(
            x, y, (LINEAR,), weights=[1.0, 1.0, 1.0, 1e-9]
        )
        assert abs(downweighted.predict(3.0) - 3.0) < abs(
            balanced.predict(3.0) - 3.0
        )

    def test_underdetermined_rejected(self):
        with pytest.raises(FitError, match="cannot determine"):
            fit_basis_model([1.0], [1.0], (CONSTANT, LINEAR))

    def test_empty_rejected(self):
        with pytest.raises(FitError):
            fit_basis_model([], [], (LINEAR,))

    def test_nonpositive_x_rejected(self):
        with pytest.raises(FitError, match="positive"):
            fit_basis_model([0.0, 1.0], [1.0, 2.0], (LINEAR,))

    def test_nan_rejected(self):
        with pytest.raises(FitError, match="finite"):
            fit_basis_model([1.0, 2.0], [1.0, float("nan")], (LINEAR,))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FitError):
            fit_basis_model([1.0, 2.0], [1.0], (LINEAR,))

    def test_empty_basis_rejected(self):
        with pytest.raises(FitError):
            fit_basis_model([1.0, 2.0], [1.0, 2.0], ())

    def test_bad_weights_rejected(self):
        with pytest.raises(FitError):
            fit_basis_model([1.0, 2.0], [1.0, 2.0], (LINEAR,), weights=[-1.0, 1.0])

    def test_in_fitted_range(self):
        x = np.array([1.0, 100.0])
        fit = fit_basis_model(x, x, (LINEAR,))
        assert fit.in_fitted_range(350.0)
        assert not fit.in_fitted_range(500.0)
        assert not fit.in_fitted_range(-1.0)

    def test_describe_mentions_basis(self):
        fit = fit_basis_model([1.0, 2.0], [1.0, 2.0], (LINEAR,))
        assert "x" in fit.describe()
        assert "R2" in fit.describe()

    def test_mixed_magnitude_conditioning(self):
        # exp vs cubic columns differ hugely in norm; column scaling must cope
        x = np.linspace(1, 1000, 12)
        y = 1e-3 * x + 5.0
        from repro.modeling.basis import EXP, CUBE

        fit = fit_basis_model(x, y, (CONSTANT, LINEAR, CUBE, EXP))
        assert fit.r2 > 0.999999
