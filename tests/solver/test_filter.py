"""Tests for repro.solver.filter."""

import pytest

from repro.errors import ConfigurationError
from repro.solver.filter import Filter, FilterEntry


class TestFilterEntry:
    def test_dominates(self):
        e = FilterEntry(theta=1.0, phi=2.0)
        assert e.dominates(1.5, 2.5)  # both worse
        assert e.dominates(1.0, 2.0)  # equal counts as dominated
        assert not e.dominates(0.5, 2.5)  # better feasibility
        assert not e.dominates(1.5, 1.5)  # better objective


class TestFilter:
    def test_margin_validation(self):
        with pytest.raises(ConfigurationError):
            Filter(gamma_theta=0.0)
        with pytest.raises(ConfigurationError):
            Filter(gamma_phi=1.0)
        with pytest.raises(ConfigurationError):
            Filter(theta_max=0.0)

    def test_empty_filter_accepts(self):
        assert Filter().acceptable(1.0, 1.0)

    def test_theta_max_cap(self):
        f = Filter(theta_max=10.0)
        assert not f.acceptable(11.0, 0.0)

    def test_dominated_point_rejected(self):
        f = Filter()
        f.add(1.0, 5.0)
        assert not f.acceptable(1.0, 5.0)
        assert not f.acceptable(2.0, 6.0)

    def test_improvement_in_either_accepted(self):
        f = Filter()
        f.add(1.0, 5.0)
        assert f.acceptable(0.5, 100.0)  # much better feasibility
        assert f.acceptable(1.0 - 1e-3, 4.0)  # better objective with margin

    def test_sufficient_decrease_vs_current(self):
        f = Filter(gamma_theta=0.1, gamma_phi=0.1)
        current = FilterEntry(theta=1.0, phi=10.0)
        # neither theta nor phi improves enough relative to current
        assert not f.acceptable(0.95, 9.95, current=current)
        # theta improves by > 10%
        assert f.acceptable(0.85, 10.0, current=current)
        # phi improves by > gamma_phi * theta
        assert f.acceptable(1.0, 9.85, current=current)

    def test_add_prunes_dominated_entries(self):
        f = Filter()
        f.add(2.0, 2.0)
        f.add(1.0, 1.0)  # dominates the first (both smaller)
        assert len(f) == 1

    def test_add_keeps_incomparable_entries(self):
        f = Filter()
        f.add(2.0, 1.0)
        f.add(1.0, 2.0)
        assert len(f) == 2

    def test_reset(self):
        f = Filter()
        f.add(1.0, 1.0)
        f.reset()
        assert len(f) == 0
        assert f.acceptable(1.0, 1.0)

    def test_entries_exposed(self):
        f = Filter()
        f.add(1.0, 2.0)
        assert isinstance(f.entries[0], FilterEntry)
