"""Tests for the interior-point solver on standard reference problems."""

import numpy as np
import pytest

from repro.solver.ipm import IPMOptions, InteriorPointSolver
from repro.solver.nlp import NLPProblem


def qp_simplex(n=3, weights=None):
    """min sum w_i x_i^2  s.t. sum x = 1, x >= 0.

    Analytic optimum: x_i proportional to 1/w_i.
    """
    w = np.asarray(weights if weights is not None else np.ones(n), dtype=float)

    return NLPProblem(
        n=n,
        m=1,
        objective=lambda x: float(np.sum(w * x**2)),
        gradient=lambda x: 2 * w * x,
        constraints=lambda x: np.array([float(np.sum(x)) - 1.0]),
        jacobian=lambda x: np.ones((1, n)),
        hess_lagrangian=lambda x, lam, of: np.diag(2 * w * of),
        lower=np.zeros(n),
        upper=np.full(n, np.inf),
        name="qp-simplex",
    )


def entropy_problem(n=4):
    """min sum x ln x  s.t. sum x = 1, 0 <= x <= 1  ->  uniform optimum."""

    def f(x):
        return float(np.sum(x * np.log(np.maximum(x, 1e-300))))

    return NLPProblem(
        n=n,
        m=1,
        objective=f,
        gradient=lambda x: np.log(np.maximum(x, 1e-300)) + 1.0,
        constraints=lambda x: np.array([float(np.sum(x)) - 1.0]),
        jacobian=lambda x: np.ones((1, n)),
        hess_lagrangian=lambda x, lam, of: np.diag(of / np.maximum(x, 1e-300)),
        lower=np.zeros(n),
        upper=np.ones(n),
        name="neg-entropy",
    )


def rosenbrock_constrained():
    """min (1-x)^2 + 100(y-x^2)^2  s.t. x + y = 1, bounds [-2, 2]."""

    def f(z):
        x, y = z
        return float((1 - x) ** 2 + 100 * (y - x**2) ** 2)

    def g(z):
        x, y = z
        return np.array(
            [-2 * (1 - x) - 400 * x * (y - x**2), 200 * (y - x**2)]
        )

    def h(z, lam, of):
        x, y = z
        return of * np.array(
            [[2 - 400 * (y - 3 * x**2), -400 * x], [-400 * x, 200.0]]
        )

    return NLPProblem(
        n=2,
        m=1,
        objective=f,
        gradient=g,
        constraints=lambda z: np.array([z[0] + z[1] - 1.0]),
        jacobian=lambda z: np.ones((1, 2)),
        hess_lagrangian=h,
        lower=np.full(2, -2.0),
        upper=np.full(2, 2.0),
        name="rosenbrock-eq",
    )


class TestQPSimplex:
    def test_uniform_weights_give_uniform_solution(self):
        problem = qp_simplex(3)
        result = InteriorPointSolver().solve(problem, np.full(3, 0.2))
        assert result.converged
        assert np.allclose(result.x, 1 / 3, atol=1e-6)

    def test_weighted_solution(self):
        w = np.array([1.0, 2.0, 4.0])
        problem = qp_simplex(3, weights=w)
        result = InteriorPointSolver().solve(problem, np.full(3, 1 / 3))
        expected = (1 / w) / np.sum(1 / w)
        assert result.converged
        assert np.allclose(result.x, expected, atol=1e-6)

    def test_constraint_satisfied(self):
        result = InteriorPointSolver().solve(qp_simplex(5), np.full(5, 0.1))
        assert abs(result.x.sum() - 1.0) < 1e-8

    def test_bounds_respected(self):
        result = InteriorPointSolver().solve(qp_simplex(4), np.full(4, 0.25))
        assert np.all(result.x >= 0.0)

    def test_start_point_clipped_into_interior(self):
        # infeasible, on-boundary start must not crash
        result = InteriorPointSolver().solve(qp_simplex(3), np.array([1.0, 0.0, 0.0]))
        assert result.converged


class TestEntropy:
    def test_uniform_optimum(self):
        problem = entropy_problem(4)
        result = InteriorPointSolver().solve(
            problem, np.array([0.7, 0.1, 0.1, 0.1])
        )
        assert result.converged
        assert np.allclose(result.x, 0.25, atol=1e-5)


class TestRosenbrock:
    def test_converges_to_feasible_stationary_point(self):
        problem = rosenbrock_constrained()
        result = InteriorPointSolver(IPMOptions(max_iter=500)).solve(
            problem, np.array([0.0, 0.5])
        )
        assert result.converged
        assert abs(result.x.sum() - 1.0) < 1e-7
        # known optimum of this constrained problem is near (0.6188, 0.3812)
        assert result.x[0] == pytest.approx(0.6188, abs=1e-3)


class TestAdaptiveBarrier:
    """The NWW 2009 adaptive strategy: converges, and usually faster."""

    def test_invalid_strategy_rejected(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            IPMOptions(barrier_strategy="chaotic")

    @pytest.mark.parametrize("strategy", ["adaptive", "probing"])
    @pytest.mark.parametrize(
        "factory,x0",
        [
            (lambda: qp_simplex(3, [1.0, 2.0, 4.0]), np.full(3, 1 / 3)),
            (lambda: entropy_problem(4), np.array([0.7, 0.1, 0.1, 0.1])),
            (lambda: rosenbrock_constrained(), np.array([0.0, 0.5])),
        ],
        ids=["qp", "entropy", "rosenbrock"],
    )
    def test_adaptive_converges(self, factory, x0, strategy):
        opts = IPMOptions(barrier_strategy=strategy, max_iter=500)
        result = InteriorPointSolver(opts).solve(factory(), x0)
        assert result.converged

    def test_probing_same_optimum(self):
        x0 = np.full(3, 1 / 3)
        probing = InteriorPointSolver(
            IPMOptions(barrier_strategy="probing")
        ).solve(qp_simplex(3, [1.0, 2.0, 4.0]), x0)
        w = np.array([1.0, 2.0, 4.0])
        expected = (1 / w) / np.sum(1 / w)
        assert np.allclose(probing.x, expected, atol=1e-5)

    def test_adaptive_same_optimum_as_monotone(self):
        problem_a = qp_simplex(3, [1.0, 2.0, 4.0])
        problem_m = qp_simplex(3, [1.0, 2.0, 4.0])
        x0 = np.full(3, 1 / 3)
        adaptive = InteriorPointSolver(
            IPMOptions(barrier_strategy="adaptive")
        ).solve(problem_a, x0)
        monotone = InteriorPointSolver(
            IPMOptions(barrier_strategy="monotone")
        ).solve(problem_m, x0)
        assert np.allclose(adaptive.x, monotone.x, atol=1e-6)

    def test_adaptive_fewer_iterations_on_qp(self):
        x0 = np.full(3, 1 / 3)
        adaptive = InteriorPointSolver(
            IPMOptions(barrier_strategy="adaptive")
        ).solve(qp_simplex(3, [1.0, 2.0, 4.0]), x0)
        monotone = InteriorPointSolver(
            IPMOptions(barrier_strategy="monotone")
        ).solve(qp_simplex(3, [1.0, 2.0, 4.0]), x0)
        assert adaptive.iterations <= monotone.iterations


class TestResultContract:
    def test_iteration_limit_reported(self):
        problem = rosenbrock_constrained()
        result = InteriorPointSolver(IPMOptions(max_iter=2)).solve(
            problem, np.array([0.0, 0.5])
        )
        assert not result.converged
        assert result.status == "max_iterations"

    def test_history_recorded_when_asked(self):
        options = IPMOptions(record_history=True)
        result = InteriorPointSolver(options).solve(qp_simplex(3), np.full(3, 0.2))
        assert result.history
        assert {"iter", "mu", "alpha", "theta"} <= set(result.history[0])

    def test_wall_time_positive(self):
        result = InteriorPointSolver().solve(qp_simplex(2), np.full(2, 0.5))
        assert result.wall_time_s > 0.0

    def test_kkt_error_small_at_optimum(self):
        result = InteriorPointSolver().solve(qp_simplex(3), np.full(3, 0.2))
        assert result.kkt_error <= IPMOptions().tol

    def test_multipliers_returned(self):
        result = InteriorPointSolver().solve(qp_simplex(3), np.full(3, 0.2))
        # lambda for sum(x)=1 at optimum of sum x^2 is -2/3
        assert result.lam[0] == pytest.approx(-2 / 3, abs=1e-4)
