"""Tests for repro.solver.nlp."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver.nlp import NLPProblem


def simple_problem(n=2, m=1, lower=None, upper=None):
    return NLPProblem(
        n=n,
        m=m,
        objective=lambda x: float(np.sum(x**2)),
        gradient=lambda x: 2 * x,
        constraints=lambda x: np.array([float(np.sum(x)) - 1.0] * m),
        jacobian=lambda x: np.ones((m, n)),
        hess_lagrangian=lambda x, lam, of: 2.0 * of * np.eye(n),
        lower=lower,
        upper=upper,
    )


class TestValidation:
    def test_defaults_to_free_bounds(self):
        p = simple_problem()
        assert np.all(np.isneginf(p.lower))
        assert np.all(np.isposinf(p.upper))

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            simple_problem(n=0)

    def test_bound_shape_checked(self):
        with pytest.raises(ConfigurationError):
            simple_problem(lower=np.zeros(3))

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_problem(lower=np.ones(2), upper=np.zeros(2))


class TestCheckedEvaluation:
    def test_objective(self):
        p = simple_problem()
        assert p.eval_objective(np.array([1.0, 2.0])) == 5.0

    def test_nonfinite_objective_rejected(self):
        p = simple_problem()
        p.objective = lambda x: float("nan")
        with pytest.raises(ConfigurationError, match="objective"):
            p.eval_objective(np.zeros(2))

    def test_gradient_shape_checked(self):
        p = simple_problem()
        p.gradient = lambda x: np.zeros(3)
        with pytest.raises(ConfigurationError, match="gradient"):
            p.eval_gradient(np.zeros(2))

    def test_constraints_shape_checked(self):
        p = simple_problem()
        p.constraints = lambda x: np.zeros(2)
        with pytest.raises(ConfigurationError, match="constraints"):
            p.eval_constraints(np.zeros(2))

    def test_jacobian_shape_checked(self):
        p = simple_problem()
        p.jacobian = lambda x: np.zeros((2, 2))
        with pytest.raises(ConfigurationError, match="jacobian"):
            p.eval_jacobian(np.zeros(2))

    def test_hessian_symmetrised(self):
        p = simple_problem()
        p.hess_lagrangian = lambda x, lam, of: np.array([[1.0, 2.0], [0.0, 1.0]])
        h = p.eval_hessian(np.zeros(2), np.zeros(1))
        assert np.allclose(h, h.T)
        assert h[0, 1] == pytest.approx(1.0)

    def test_hessian_nonfinite_rejected(self):
        p = simple_problem()
        p.hess_lagrangian = lambda x, lam, of: np.full((2, 2), np.inf)
        with pytest.raises(ConfigurationError):
            p.eval_hessian(np.zeros(2), np.zeros(1))


class TestClipInterior:
    def test_clips_to_strict_interior(self):
        p = simple_problem(lower=np.zeros(2), upper=np.ones(2))
        x = p.clip_interior(np.array([0.0, 1.0]))
        assert np.all(x > 0.0)
        assert np.all(x < 1.0)

    def test_interior_point_unchanged(self):
        p = simple_problem(lower=np.zeros(2), upper=np.ones(2))
        x = p.clip_interior(np.array([0.5, 0.5]))
        assert np.allclose(x, 0.5)

    def test_free_variables_untouched(self):
        p = simple_problem()
        x = p.clip_interior(np.array([-5.0, 100.0]))
        assert np.allclose(x, [-5.0, 100.0])

    def test_one_sided_bounds(self):
        p = simple_problem(lower=np.zeros(2), upper=np.full(2, np.inf))
        x = p.clip_interior(np.array([-1.0, 5.0]))
        assert x[0] > 0.0
        assert x[1] == 5.0

    def test_masks(self):
        p = simple_problem(
            lower=np.array([0.0, -np.inf]), upper=np.array([np.inf, 1.0])
        )
        assert list(p.has_lower()) == [True, False]
        assert list(p.has_upper()) == [False, True]
