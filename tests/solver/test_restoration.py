"""Tests for the IPM feasibility-restoration phase."""

import numpy as np
import pytest

from repro.solver.ipm import IPMOptions, InteriorPointSolver
from repro.solver.nlp import NLPProblem


def circle_problem():
    """min x + y  s.t. x^2 + y^2 = 1, bounds [-2, 2].

    Optimum at (-1/sqrt(2), -1/sqrt(2)); the curved constraint gives the
    restoration machinery something real to do from bad starts.
    """
    return NLPProblem(
        n=2,
        m=1,
        objective=lambda z: float(z[0] + z[1]),
        gradient=lambda z: np.ones(2),
        constraints=lambda z: np.array([float(z @ z) - 1.0]),
        jacobian=lambda z: (2 * z).reshape(1, 2),
        hess_lagrangian=lambda z, lam, of: 2.0 * lam[0] * np.eye(2),
        lower=np.full(2, -2.0),
        upper=np.full(2, 2.0),
        name="circle",
    )


class TestRestoreHelper:
    def test_reduces_violation(self):
        problem = circle_problem()
        solver = InteriorPointSolver()
        x0 = np.array([1.9, 1.9])  # violation |7.22 - 1| = 6.22
        theta0 = float(np.abs(problem.eval_constraints(x0)).sum())
        x_new, ok = solver._restore(problem, x0, theta0)
        theta_new = float(np.abs(problem.eval_constraints(x_new)).sum())
        assert ok
        assert theta_new < theta0 * 0.2

    def test_stays_in_bounds(self):
        problem = circle_problem()
        solver = InteriorPointSolver()
        x_new, _ = solver._restore(problem, np.array([1.99, 1.99]), 7.0)
        assert np.all(x_new >= problem.lower)
        assert np.all(x_new <= problem.upper)

    def test_feasible_start_returns_quickly(self):
        problem = circle_problem()
        solver = InteriorPointSolver()
        x0 = np.array([1.0, 0.0])
        x_new, ok = solver._restore(problem, x0, 1e-12)
        assert ok


class TestNonconvexConstraintSolve:
    @pytest.mark.parametrize("strategy", ["monotone", "adaptive", "probing"])
    def test_circle_optimum(self, strategy):
        problem = circle_problem()
        result = InteriorPointSolver(
            IPMOptions(barrier_strategy=strategy, max_iter=400)
        ).solve(problem, np.array([0.5, -0.5]))
        assert result.converged
        expected = -1.0 / np.sqrt(2.0)
        assert result.x == pytest.approx([expected, expected], abs=1e-5)

    def test_from_far_corner(self):
        problem = circle_problem()
        result = InteriorPointSolver(IPMOptions(max_iter=500)).solve(
            problem, np.array([1.8, 1.8])
        )
        assert result.converged
        assert abs(float(result.x @ result.x) - 1.0) < 1e-7
