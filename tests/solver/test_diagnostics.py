"""Tests for repro.solver.diagnostics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.solver.diagnostics import (
    ConvergenceReport,
    analyze_convergence,
    render_history,
)
from repro.solver.ipm import IPMOptions, InteriorPointSolver
from tests.solver.test_ipm import qp_simplex


@pytest.fixture
def recorded_solve():
    options = IPMOptions(record_history=True)
    return InteriorPointSolver(options).solve(
        qp_simplex(3, [1.0, 2.0, 4.0]), np.full(3, 1 / 3)
    )


class TestAnalyzeConvergence:
    def test_healthy_solve(self, recorded_solve):
        report = analyze_convergence(recorded_solve)
        assert isinstance(report, ConvergenceReport)
        assert report.converged
        assert report.healthy()
        assert report.barrier_decreased
        assert 0.0 < report.mean_step_length <= 1.0

    def test_requires_history(self):
        result = InteriorPointSolver().solve(
            qp_simplex(2), np.full(2, 0.5)
        )
        with pytest.raises(ConfigurationError, match="record_history"):
            analyze_convergence(result)

    def test_iterations_match(self, recorded_solve):
        report = analyze_convergence(recorded_solve)
        assert report.iterations == recorded_solve.iterations

    def test_restorations_copied_from_result(self, recorded_solve):
        report = analyze_convergence(recorded_solve)
        assert report.restorations == recorded_solve.restorations
        assert report.restorations >= 0

    def test_exact_restoration_count_implies_suspected(self, recorded_solve):
        from dataclasses import replace

        forced = replace(recorded_solve, restorations=2)
        report = analyze_convergence(forced)
        assert report.restorations == 2
        assert report.restorations_suspected

    def test_heuristic_fallback_without_counter(self, recorded_solve):
        from dataclasses import replace

        # a legacy result (restorations=0) with a big regulariser spike
        # still trips the heuristic
        history = [dict(h) for h in recorded_solve.history]
        history[0]["delta_w"] = 1.0
        legacy = replace(recorded_solve, history=history, restorations=0)
        assert analyze_convergence(legacy).restorations_suspected

    def test_unhealthy_when_steps_tiny(self, recorded_solve):
        report = analyze_convergence(recorded_solve)
        from dataclasses import replace

        crippled = replace(report, mean_step_length=0.001)
        assert not crippled.healthy()


class TestRenderHistory:
    def test_table_structure(self, recorded_solve):
        text = render_history(recorded_solve)
        assert "iter" in text
        assert "mu" in text
        assert "kkt_err" in text
        assert str(recorded_solve.iterations) in text

    def test_no_history(self):
        result = InteriorPointSolver().solve(qp_simplex(2), np.full(2, 0.5))
        assert render_history(result) == "(no history recorded)"

    def test_row_cap(self, recorded_solve):
        text = render_history(recorded_solve, max_rows=1)
        if len(recorded_solve.history) > 1:
            assert "more iterations" in text
