"""Property-based tests: IPM and waterfilling agree on random instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modeling.perf_profile import PerfProfile
from repro.solver import solve_block_partition, waterfill_partition


def affine_models(slopes, intercepts):
    out = []
    for i, (s, b) in enumerate(zip(slopes, intercepts)):
        prof = PerfProfile(f"d{i}")
        for u in (10, 50, 250, 1000, 4000):
            prof.add(u, b + s * u, 1e-7 * u)
        out.append(prof.fit())
    return out


slopes_st = st.lists(st.floats(1e-5, 1e-2), min_size=2, max_size=6)


class TestPartitionProperties:
    @given(slopes_st, st.floats(500.0, 20_000.0))
    @settings(max_examples=25, deadline=None)
    def test_conservation(self, slopes, quantum):
        models = affine_models(slopes, [0.01] * len(slopes))
        result = solve_block_partition(models, quantum)
        assert result.units.sum() == pytest.approx(quantum, rel=1e-6)
        assert np.all(result.units >= -1e-9)

    @given(slopes_st, st.floats(1000.0, 20_000.0))
    @settings(max_examples=25, deadline=None)
    def test_ipm_agrees_with_waterfilling(self, slopes, quantum):
        from repro.solver.partition import _trust_caps

        models = affine_models(slopes, [0.01] * len(slopes))
        chain = solve_block_partition(models, quantum)
        caps = _trust_caps(models, quantum)
        wf_units, _ = waterfill_partition(models, quantum, caps=caps)
        # both compute the capped equal-time split; allow a few percent slack
        assert np.allclose(chain.units, wf_units, rtol=0.05, atol=quantum * 0.01)

    @given(slopes_st)
    @settings(max_examples=25, deadline=None)
    def test_faster_never_gets_less(self, slopes):
        models = affine_models(slopes, [0.01] * len(slopes))
        result = solve_block_partition(models, 8000.0)
        order = np.argsort(slopes)  # ascending slope = descending speed
        units = result.units[order]
        # monotone non-increasing assignment with small numeric slack
        for a, b in zip(units, units[1:]):
            assert b <= a * 1.05 + 1.0

    @given(
        slopes_st,
        st.floats(0.0, 0.02),
        st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_noise_robustness(self, slopes, sigma, seed):
        rng = np.random.default_rng(seed)
        models = []
        for i, s in enumerate(slopes):
            prof = PerfProfile(f"d{i}")
            for u in (10, 50, 250, 1000, 4000):
                noise = float(np.exp(rng.normal(0, sigma)))
                prof.add(u, (0.01 + s * u) * noise, 1e-7 * u)
            models.append(prof.fit())
        result = solve_block_partition(models, 8000.0)
        assert result.units.sum() == pytest.approx(8000.0, rel=1e-6)
        assert np.all(np.isfinite(result.units))
