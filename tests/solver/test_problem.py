"""Tests for repro.solver.problem (the partition NLP construction)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.modeling.perf_profile import PerfProfile
from repro.solver.ipm import InteriorPointSolver
from repro.solver.problem import build_partition_nlp, initial_partition_point


def models(slopes=(0.001, 0.002, 0.004)):
    out = []
    for i, s in enumerate(slopes):
        prof = PerfProfile(f"d{i}")
        for u in (10, 100, 1000, 5000):
            prof.add(u, 0.05 + s * u, 1e-6 * u)
        out.append(prof.fit())
    return out


class TestBuildPartitionNLP:
    def test_dimensions(self):
        nlp = build_partition_nlp(models(), 1000.0)
        n_dev = 3
        assert nlp.n == 2 * n_dev + 1  # fractions, slacks, T
        assert nlp.m == n_dev + 1

    def test_constraints_at_equal_time_point(self):
        ms = models((0.001, 0.001, 0.001))
        q = 3000.0
        fracs = np.full(3, 1 / 3)
        t = float(ms[0].E(1000.0))
        z = np.concatenate([fracs, np.zeros(3), [t]])
        c = build_partition_nlp(ms, q).eval_constraints(z)
        assert np.allclose(c, 0.0, atol=1e-6)

    def test_jacobian_matches_finite_difference(self):
        ms = models()
        nlp = build_partition_nlp(ms, 1000.0)
        z = initial_partition_point(ms, 1000.0)
        jac = nlp.eval_jacobian(z)
        h = 1e-7
        for col in range(nlp.n):
            zp, zm = z.copy(), z.copy()
            zp[col] += h
            zm[col] -= h
            numeric = (nlp.eval_constraints(zp) - nlp.eval_constraints(zm)) / (2 * h)
            assert np.allclose(jac[:, col], numeric, rtol=1e-3, atol=1e-4)

    def test_objective_is_t(self):
        nlp = build_partition_nlp(models(), 1000.0)
        z = np.zeros(nlp.n)
        z[-1] = 42.0
        assert nlp.eval_objective(z) == 42.0
        grad = nlp.eval_gradient(z)
        assert grad[-1] == 1.0
        assert np.allclose(grad[:-1], 0.0)

    def test_bounds(self):
        nlp = build_partition_nlp(models(), 1000.0)
        assert np.allclose(nlp.lower, 0.0)
        assert np.allclose(nlp.upper[:3], 1.0)
        assert np.all(np.isposinf(nlp.upper[3:]))

    def test_upper_units_become_fraction_caps(self):
        nlp = build_partition_nlp(models(), 1000.0, upper_units=[500.0, 800.0, 1000.0])
        assert nlp.upper[0] == pytest.approx(0.5)
        assert nlp.upper[1] == pytest.approx(0.8)
        assert nlp.upper[2] == pytest.approx(1.0)

    def test_upper_units_below_quantum_rejected(self):
        with pytest.raises(ConfigurationError, match="infeasible"):
            build_partition_nlp(models(), 1000.0, upper_units=[100.0, 100.0, 100.0])

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigurationError):
            build_partition_nlp([], 100.0)

    def test_solvable_by_ipm(self):
        ms = models()
        q = 2000.0
        nlp = build_partition_nlp(ms, q)
        z0 = initial_partition_point(ms, q)
        result = InteriorPointSolver().solve(nlp, z0)
        assert result.converged
        fracs = result.x[:3]
        assert fracs.sum() == pytest.approx(1.0, abs=1e-6)
        times = [float(m.E(f * q)) for m, f in zip(ms, fracs)]
        assert max(times) - min(times) < 0.01 * max(times)


class TestInitialPartitionPoint:
    def test_strictly_interior(self):
        ms = models()
        z0 = initial_partition_point(ms, 1000.0)
        assert np.all(z0[:3] > 0.0)
        assert np.all(z0[:3] < 1.0)
        assert np.all(z0[3:6] > 0.0)  # slacks positive
        assert z0[6] > 0.0  # T positive

    def test_fractions_sum_to_one(self):
        z0 = initial_partition_point(models(), 1000.0)
        assert z0[:3].sum() == pytest.approx(1.0)

    def test_faster_device_larger_fraction(self):
        z0 = initial_partition_point(models((0.001, 0.01, 0.01)), 1000.0)
        assert z0[0] > z0[1]

    def test_respects_caps(self):
        z0 = initial_partition_point(
            models(), 1000.0, upper_units=[400.0, 800.0, 1000.0]
        )
        assert z0[0] <= 0.4 + 1e-9
