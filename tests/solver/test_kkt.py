"""Tests for repro.solver.kkt."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solver.kkt import KKTSolution, solve_kkt


class TestSolveKKT:
    def test_solves_well_posed_system(self):
        # min 0.5 x'Hx s.t. sum(x) = 1, H = I: Newton from x=0
        h = np.eye(2)
        jac = np.ones((1, 2))
        rhs_x = np.zeros(2)
        rhs_c = np.array([1.0])
        sol = solve_kkt(h, jac, rhs_x, rhs_c)
        # dx solves the equality-constrained QP step: x = [0.5, 0.5]
        assert np.allclose(sol.dx, [0.5, 0.5])
        assert sol.delta_w == 0.0

    def test_residual_satisfied(self):
        rng = np.random.default_rng(1)
        h = np.diag(rng.uniform(0.5, 2.0, 4))
        jac = rng.normal(size=(2, 4))
        rhs_x = rng.normal(size=4)
        rhs_c = rng.normal(size=2)
        sol = solve_kkt(h, jac, rhs_x, rhs_c)
        # verify the linear system holds
        assert np.allclose(h @ sol.dx + jac.T @ sol.dlam, rhs_x, atol=1e-8)
        assert np.allclose(jac @ sol.dx, rhs_c, atol=1e-8)

    def test_indefinite_hessian_regularised(self):
        h = np.diag([-1.0, 1.0])  # wrong inertia without regularisation
        jac = np.ones((1, 2))
        sol = solve_kkt(h, jac, np.zeros(2), np.array([1.0]))
        assert sol.delta_w > 0.0
        assert np.all(np.isfinite(sol.dx))

    def test_rank_deficient_jacobian_gets_dual_regularisation(self):
        h = np.eye(2)
        jac = np.array([[1.0, 1.0], [1.0, 1.0]])  # duplicated constraint
        sol = solve_kkt(h, jac, np.zeros(2), np.array([1.0, 1.0]))
        assert sol.delta_c > 0.0

    def test_badly_scaled_system_still_solves(self):
        # mimic barrier blowup near a bound: huge diagonal entry
        h = np.diag([1e12, 1e-4])
        jac = np.array([[1.0, 1.0]])
        sol = solve_kkt(h, jac, np.array([1.0, 1.0]), np.array([0.5]))
        assert np.all(np.isfinite(sol.dx))
        resid_x = h @ sol.dx + jac.T @ sol.dlam - np.array([1.0, 1.0])
        assert np.linalg.norm(resid_x) < 1e-4 * np.linalg.norm(h)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SolverError):
            solve_kkt(np.eye(2), np.ones((1, 3)), np.zeros(2), np.zeros(1))

    def test_returns_solution_type(self):
        sol = solve_kkt(np.eye(1), np.ones((1, 1)), np.zeros(1), np.zeros(1))
        assert isinstance(sol, KKTSolution)
