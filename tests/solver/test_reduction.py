"""Tests for repro.solver.reduction (waterfilling)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SolverError
from repro.modeling.perf_profile import PerfProfile
from repro.solver.reduction import waterfill_partition


def model(device_id, slope, intercept=0.1, sizes=(10, 100, 1000, 5000)):
    prof = PerfProfile(device_id)
    for u in sizes:
        prof.add(u, intercept + slope * u, 1e-6 * u)
    return prof.fit()


class TestWaterfill:
    def test_equal_devices_split_equally(self):
        models = [model(f"d{i}", 0.01) for i in range(4)]
        units, t = waterfill_partition(models, 8000.0)
        assert units.sum() == pytest.approx(8000.0)
        assert np.allclose(units, 2000.0, rtol=0.01)

    def test_faster_device_gets_more(self):
        fast = model("fast", 0.001)
        slow = model("slow", 0.01)
        units, _ = waterfill_partition([fast, slow], 5000.0)
        assert units[0] > units[1] * 5

    def test_times_equalised(self):
        models = [model("a", 0.001), model("b", 0.004), model("c", 0.016)]
        units, t = waterfill_partition(models, 6000.0)
        times = [float(m.E(u)) for m, u in zip(models, units) if u > 1]
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.02

    def test_expensive_intercept_device_dropped(self):
        # device whose fixed cost exceeds the common finish time gets 0
        cheap = [model(f"d{i}", 0.001, intercept=0.01) for i in range(3)]
        pricey = model("x", 0.001, intercept=1e3)
        units, t = waterfill_partition(cheap + [pricey], 3000.0)
        assert units[3] == 0.0
        assert units.sum() == pytest.approx(3000.0)

    def test_caps_respected(self):
        models = [model("a", 0.001), model("b", 0.001)]
        units, _ = waterfill_partition(models, 1000.0, caps=[100.0, 1000.0])
        assert units[0] <= 100.0 + 1e-6
        assert units.sum() == pytest.approx(1000.0)

    def test_caps_below_quantum_rejected(self):
        models = [model("a", 0.001)]
        with pytest.raises(ConfigurationError, match="infeasible"):
            waterfill_partition(models, 1000.0, caps=[10.0])

    def test_nonpositive_caps_rejected(self):
        models = [model("a", 0.001), model("b", 0.001)]
        with pytest.raises(ConfigurationError):
            waterfill_partition(models, 10.0, caps=[0.0, 100.0])

    def test_single_device_gets_everything(self):
        units, t = waterfill_partition([model("a", 0.01)], 500.0)
        assert units[0] == pytest.approx(500.0)

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigurationError):
            waterfill_partition([], 100.0)

    def test_nonpositive_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            waterfill_partition([model("a", 0.01)], 0.0)

    def test_sum_always_exact(self):
        rng = np.random.default_rng(5)
        for trial in range(5):
            models = [
                model(f"d{i}", float(rng.uniform(1e-4, 1e-1)))
                for i in range(rng.integers(2, 6))
            ]
            q = float(rng.uniform(100, 50_000))
            units, _ = waterfill_partition(models, q)
            assert units.sum() == pytest.approx(q, rel=1e-9)
            assert np.all(units >= 0.0)
