"""Cross-validation: our interior-point solver vs scipy.optimize.

Random convex QPs with an equality constraint and box bounds — exactly
the problem class the partition NLP lives in — solved by both our IPM
and SciPy's SLSQP; the optima must coincide.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize

from repro.solver.ipm import IPMOptions, InteriorPointSolver
from repro.solver.nlp import NLPProblem


def random_qp(n, seed):
    """min 0.5 x'Qx + c'x  s.t. sum x = 1, 0 <= x <= 1, Q PSD."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    q = a @ a.T + n * np.eye(n)  # well-conditioned PSD
    c = rng.normal(size=n)

    problem = NLPProblem(
        n=n,
        m=1,
        objective=lambda x: float(0.5 * x @ q @ x + c @ x),
        gradient=lambda x: q @ x + c,
        constraints=lambda x: np.array([float(np.sum(x)) - 1.0]),
        jacobian=lambda x: np.ones((1, n)),
        hess_lagrangian=lambda x, lam, of: of * q,
        lower=np.zeros(n),
        upper=np.ones(n),
        name=f"qp-{seed}",
    )
    return problem, q, c


def scipy_solution(q, c):
    n = q.shape[0]
    res = minimize(
        lambda x: 0.5 * x @ q @ x + c @ x,
        np.full(n, 1 / n),
        jac=lambda x: q @ x + c,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * n,
        constraints=[{"type": "eq", "fun": lambda x: np.sum(x) - 1.0}],
        options={"maxiter": 500, "ftol": 1e-12},
    )
    assert res.success
    return res.x


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("strategy", ["monotone", "adaptive", "probing"])
    def test_random_qp_optima_match(self, seed, strategy):
        n = 5
        problem, q, c = random_qp(n, seed)
        ours = InteriorPointSolver(
            IPMOptions(barrier_strategy=strategy, max_iter=400)
        ).solve(problem, np.full(n, 1 / n))
        reference = scipy_solution(q, c)
        assert ours.converged
        assert np.allclose(ours.x, reference, atol=5e-5), (
            f"seed={seed} ours={ours.x} scipy={reference}"
        )

    @pytest.mark.parametrize("n", [2, 3, 8, 12])
    def test_dimension_sweep(self, n):
        problem, q, c = random_qp(n, seed=100 + n)
        ours = InteriorPointSolver().solve(problem, np.full(n, 1 / n))
        reference = scipy_solution(q, c)
        assert ours.converged
        assert ours.objective == pytest.approx(
            0.5 * reference @ q @ reference + c @ reference, abs=1e-7
        )

    def test_active_bounds_detected(self):
        """A QP whose optimum pins variables at their bounds."""
        n = 4
        q = np.eye(n)
        c = np.array([-10.0, 0.0, 0.0, 0.0])  # pushes x0 to its upper bound

        problem = NLPProblem(
            n=n,
            m=1,
            objective=lambda x: float(0.5 * x @ q @ x + c @ x),
            gradient=lambda x: q @ x + c,
            constraints=lambda x: np.array([float(np.sum(x)) - 1.0]),
            jacobian=lambda x: np.ones((1, n)),
            hess_lagrangian=lambda x, lam, of: of * q,
            lower=np.zeros(n),
            upper=np.full(n, 0.7),
        )
        ours = InteriorPointSolver().solve(problem, np.full(n, 1 / n))
        reference = minimize(
            lambda x: 0.5 * x @ q @ x + c @ x,
            np.full(n, 1 / n),
            method="SLSQP",
            bounds=[(0.0, 0.7)] * n,
            constraints=[{"type": "eq", "fun": lambda x: np.sum(x) - 1.0}],
        ).x
        assert ours.converged
        assert ours.x[0] == pytest.approx(0.7, abs=1e-6)
        assert np.allclose(ours.x, reference, atol=1e-5)
