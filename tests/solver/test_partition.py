"""Tests for repro.solver.partition (the high-level solve chain)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.modeling.perf_profile import PerfProfile
from repro.solver import solve_block_partition
from repro.solver.partition import _trust_caps
from tests.conftest import make_fitted_models


def model(device_id, slope, intercept=0.1, sizes=(10, 100, 1000, 5000)):
    prof = PerfProfile(device_id)
    for u in sizes:
        prof.add(u, intercept + slope * u, 1e-6 * u)
    return prof.fit()


class TestSolveBlockPartition:
    def test_ipm_on_clean_models(self):
        models = {f"d{i}": model(f"d{i}", 0.001 * (i + 1)) for i in range(4)}
        result = solve_block_partition(models, 10_000.0)
        assert result.method == "ipm"
        assert result.converged
        assert result.units.sum() == pytest.approx(10_000.0, rel=1e-6)

    def test_equal_time_property(self):
        models = {f"d{i}": model(f"d{i}", 0.001 * (i + 1)) for i in range(4)}
        result = solve_block_partition(models, 10_000.0)
        times = [
            float(models[d].E(u))
            for d, u in result.units_by_device.items()
            if u > 1
        ]
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.05

    def test_matches_ground_truth_partition(self, mm_ground_truth):
        models = make_fitted_models(mm_ground_truth)
        result = solve_block_partition(models, 2048.0)
        ideal = mm_ground_truth.ideal_partition(2048)
        for d, u in result.units_by_device.items():
            assert u == pytest.approx(ideal[d], abs=0.12 * 2048)

    def test_fractions_sum_to_one(self):
        models = {f"d{i}": model(f"d{i}", 0.001) for i in range(3)}
        result = solve_block_partition(models, 900.0)
        assert sum(result.fractions.values()) == pytest.approx(1.0)

    def test_single_device(self):
        result = solve_block_partition({"only": model("only", 0.01)}, 100.0)
        assert result.units_by_device["only"] == pytest.approx(100.0)
        assert result.converged

    def test_sequence_input(self):
        models = [model("a", 0.001), model("b", 0.002)]
        result = solve_block_partition(models, 100.0)
        assert result.device_ids == ("a", "b")

    def test_huge_intercept_device_idled(self):
        models = {
            "cheap1": model("cheap1", 0.001, intercept=0.01),
            "cheap2": model("cheap2", 0.001, intercept=0.01),
            "pricey": model("pricey", 0.001, intercept=1e3),
        }
        result = solve_block_partition(models, 2000.0)
        assert result.units_by_device["pricey"] == pytest.approx(0.0, abs=1e-6)
        assert result.converged

    def test_solve_time_recorded(self):
        models = {f"d{i}": model(f"d{i}", 0.001) for i in range(2)}
        result = solve_block_partition(models, 100.0)
        assert result.solve_time_s > 0.0

    def test_empty_models_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_block_partition({}, 100.0)

    def test_nonpositive_quantum_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_block_partition({"a": model("a", 0.01)}, -5.0)

    def test_never_raises_with_fallback(self):
        # a deliberately degenerate model set: identical flat curves
        prof = PerfProfile("flat")
        prof.add(1, 1.0, 0.0)
        prof.add(2, 1.0, 0.0)
        flat = prof.fit()
        result = solve_block_partition({"a": flat, "b": flat}, 100.0)
        assert result.units.sum() == pytest.approx(100.0, rel=1e-6)

    def test_trust_caps_limit_extrapolation(self):
        # models probed only up to 100 units cannot be assigned 100x that
        models = {
            "a": model("a", 0.001, sizes=(10, 30, 60, 100)),
            "b": model("b", 0.001, sizes=(10, 30, 60, 100)),
        }
        result = solve_block_partition(models, 600.0)
        # caps are 4x the probed range = 400; both devices stay within
        for u in result.units_by_device.values():
            assert u <= 400.0 + 1e-6

    def test_caps_relaxed_when_insufficient(self):
        # quantum far beyond every trust cap still gets fully assigned
        models = {
            "a": model("a", 0.001, sizes=(10, 30, 60, 100)),
            "b": model("b", 0.001, sizes=(10, 30, 60, 100)),
        }
        result = solve_block_partition(models, 10_000.0)
        assert result.units.sum() == pytest.approx(10_000.0, rel=1e-6)


class TestTrustCaps:
    def test_basic_caps(self):
        models = [model("a", 0.001, sizes=(10, 100)), model("b", 0.001)]
        caps = _trust_caps(models, 1000.0)
        assert caps[0] == pytest.approx(400.0)
        assert caps[1] == pytest.approx(1000.0)  # 4*5000 clipped at q

    def test_caps_cover_quantum(self):
        models = [model(f"d{i}", 0.001, sizes=(5, 10, 20)) for i in range(3)]
        caps = _trust_caps(models, 100_000.0)
        assert caps.sum() >= 100_000.0
