"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "matmul"
        assert args.policy == "plb-hec"
        assert args.machines == 4

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_invalid_machines_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--machines", "7"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.replications == 2
        assert args.jobs is None
        assert args.output == "BENCH_wallclock.json"

    def test_jobs_flag_on_sweep_commands(self):
        args = build_parser().parse_args(["fig4", "--jobs", "3"])
        assert args.jobs == 3
        args = build_parser().parse_args(["compare", "--jobs", "2"])
        assert args.jobs == 2


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--app", "matmul", "--size", "4096"]) == 0
        out = capsys.readouterr().out
        assert "plb-hec" in out
        assert "time_s" in out

    def test_run_oracle(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "4096", "--policy", "oracle"]
        ) == 0
        assert "oracle" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--app", "matmul", "--size", "4096",
             "--machines", "2", "--replications", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_greedy" in out
        for policy in ("greedy", "acosta", "hdss", "plb-hec"):
            assert policy in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Tesla K20c" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1", "--points", "6"]) == 0
        assert "Fig.1" in capsys.readouterr().out

    def test_fig4_fast(self, capsys):
        assert main(["fig4", "--fast", "--replications", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast", "--replications", "1"]) == 0
        assert "blackscholes" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--replications", "1"]) == 0
        assert "gpu_total" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--replications", "1"]) == 0
        assert "rebalances" in capsys.readouterr().out

    def test_overhead(self, capsys):
        assert main(["overhead", "--repetitions", "3"]) == 0
        assert "solver overhead" in capsys.readouterr().out

    def test_bench(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["bench", "--jobs", "1", "--replications", "1",
             "--output", "out.json"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel_speedup" in out
        assert (tmp_path / "out.json").exists()

    def test_run_gantt(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "4096", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "=probe" in out and "=exec" in out
