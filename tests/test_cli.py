"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "matmul"
        assert args.policy == "plb-hec"
        assert args.machines == 4

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])

    def test_invalid_machines_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--machines", "7"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.replications == 2
        assert args.jobs is None
        assert args.output == "BENCH_wallclock.json"

    def test_jobs_flag_on_sweep_commands(self):
        args = build_parser().parse_args(["fig4", "--jobs", "3"])
        assert args.jobs == 3
        args = build_parser().parse_args(["compare", "--jobs", "2"])
        assert args.jobs == 2

    def test_log_flags_are_global(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--log-format", "json", "run"]
        )
        assert args.log_level == "debug"
        assert args.log_format == "json"
        args = build_parser().parse_args(["run"])
        assert args.log_level is None and args.log_format is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.out == "trace.json"
        assert args.policy == "plb-hec"

    def test_run_trace_and_metrics_out(self):
        args = build_parser().parse_args(
            ["run", "--trace-out", "t.json", "--metrics-out", "m.json"]
        )
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"

    def test_compare_trace_out(self):
        args = build_parser().parse_args(["compare", "--trace-out", "c.json"])
        assert args.trace_out == "c.json"

    def test_run_fault_flags_are_repeatable(self):
        args = build_parser().parse_args(
            ["run", "--fail", "A.gpu0@0.1", "--fail", "B.cpu@0.2",
             "--perturb", "A.cpu@0.1:2.5", "--transient", "B.gpu0@0.1+0.05"]
        )
        assert args.fail == ["A.gpu0@0.1", "B.cpu@0.2"]
        assert args.perturb == ["A.cpu@0.1:2.5"]
        assert args.transient == ["B.gpu0@0.1+0.05"]

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.runs == 16
        assert args.seed == 0
        assert args.out == "chaos_scorecard.json"
        assert args.quick is False
        assert args.policies is None

    def test_dashboard_scorecard_flag(self):
        args = build_parser().parse_args(
            ["dashboard", "--scorecard", "sc.json"]
        )
        assert args.scorecard == "sc.json"


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--app", "matmul", "--size", "4096"]) == 0
        out = capsys.readouterr().out
        assert "plb-hec" in out
        assert "time_s" in out

    def test_run_oracle(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "4096", "--policy", "oracle"]
        ) == 0
        assert "oracle" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(
            ["compare", "--app", "matmul", "--size", "4096",
             "--machines", "2", "--replications", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_greedy" in out
        for policy in ("greedy", "acosta", "hdss", "plb-hec"):
            assert policy in out
        # per-policy makespan-attribution columns ride the table
        for column in ("compute", "transfer", "idle", "solver"):
            assert column in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Tesla K20c" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig1", "--points", "6"]) == 0
        assert "Fig.1" in capsys.readouterr().out

    def test_fig4_fast(self, capsys):
        assert main(["fig4", "--fast", "--replications", "1"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_fig5_fast(self, capsys):
        assert main(["fig5", "--fast", "--replications", "1"]) == 0
        assert "blackscholes" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6", "--replications", "1"]) == 0
        assert "gpu_total" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7", "--replications", "1"]) == 0
        assert "rebalances" in capsys.readouterr().out

    def test_overhead(self, capsys):
        assert main(["overhead", "--repetitions", "3"]) == 0
        assert "solver overhead" in capsys.readouterr().out

    def test_bench(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["bench", "--jobs", "1", "--replications", "1",
             "--output", "out.json"]
        ) == 0
        out = capsys.readouterr().out
        assert "parallel_speedup" in out
        assert (tmp_path / "out.json").exists()

    def test_run_gantt(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "4096", "--gantt"]
        ) == 0
        out = capsys.readouterr().out
        assert "=probe" in out and "=exec" in out

    def test_run_trace_and_metrics_out(self, capsys, tmp_path):
        import json

        from repro.obs.trace_export import validate_chrome_trace

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["run", "--app", "matmul", "--size", "4096",
             "--trace-out", str(trace_path), "--metrics-out", str(metrics_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out and "metrics written to" in out
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        report = json.loads(metrics_path.read_text())
        assert report["config"]["app"] == "matmul"
        assert report["run_id"] == doc["otherData"]["run_id"]
        counters = report["metrics"]["counters"]
        assert counters["plbhec.probe_rounds"] > 0
        assert counters["ipm.iterations"] > 0
        assert counters["sim.events_dispatched"] > 0

    def test_trace_command(self, capsys, tmp_path):
        import json

        from repro.obs.trace_export import validate_chrome_trace

        out_path = tmp_path / "t.json"
        assert main(
            ["trace", "--app", "matmul", "--size", "2048",
             "--out", str(out_path)]
        ) == 0
        assert "perfetto" in capsys.readouterr().out
        assert validate_chrome_trace(json.loads(out_path.read_text())) == []

    def test_compare_trace_out(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "cmp.json"
        assert main(
            ["compare", "--app", "matmul", "--size", "2048",
             "--machines", "2", "--replications", "1",
             "--trace-out", str(out_path)]
        ) == 0
        doc = json.loads(out_path.read_text())
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        # one process group per compared policy
        assert sorted(names) == ["acosta", "greedy", "hdss", "plb-hec"]


def fake_bench_report(serial=1.0):
    return {
        "timings_s": {
            "serial": serial, "parallel": serial / 2,
            "cache_cold": serial / 2, "cache_warm": 0.001,
        },
        "host": {"platform": "test-os", "python": "3.12.0", "cpu_count": 8},
        "meta": {
            "grid": {"app": "matmul", "sizes": [4096, 65536]},
            "jobs": 2,
            "effective_jobs": 2,
            "parallel_speedup": 2.0,
            "warm_over_cold_fraction": 0.01,
            "parallel_matches_serial": True,
        },
    }


class TestBenchGateParser:
    def test_bench_gate_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.check is False
        assert args.baseline is None
        assert args.history is None
        assert args.rel_threshold == 0.50

    def test_bench_gate_flags(self):
        args = build_parser().parse_args(
            ["bench", "--check", "--baseline", "b.jsonl",
             "--history", "h", "--rel-threshold", "0.75"]
        )
        assert args.check is True
        assert args.baseline == "b.jsonl"
        assert args.history == "h"
        assert args.rel_threshold == 0.75

    def test_dashboard_defaults(self):
        args = build_parser().parse_args(["dashboard"])
        assert args.out == "dashboard.html"
        assert args.app == "matmul"
        assert args.replications == 2
        assert args.history is None


class TestBenchGateCommand:
    @pytest.fixture(autouse=True)
    def fast_bench(self, monkeypatch):
        import repro.experiments.wallclock as wallclock

        self.reports = [fake_bench_report()]
        monkeypatch.setattr(
            wallclock, "run_wallclock_bench",
            lambda **kwargs: self.reports[-1],
        )

    def test_bench_appends_history(self, tmp_path, capsys):
        hist = tmp_path / "h" / "history.jsonl"
        assert main(["bench", "--output", "-", "--history", str(hist)]) == 0
        assert "history: appended" in capsys.readouterr().out
        assert len(hist.read_text().splitlines()) == 1

    def test_bench_history_dash_disables(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--output", "-", "--history", "-"]) == 0
        assert "history:" not in capsys.readouterr().out
        assert not (tmp_path / ".repro_history").exists()

    def test_bench_defaults_to_repro_history_dir(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        assert main(["bench", "--output", "-"]) == 0
        assert (tmp_path / ".repro_history" / "history.jsonl").exists()

    def test_check_no_change_exits_zero(self, tmp_path, capsys):
        hist = str(tmp_path / "history.jsonl")
        assert main(["bench", "--output", "-", "--history", hist]) == 0
        assert main(["bench", "--output", "-", "--history", hist]) == 0
        code = main(["bench", "--output", "-", "--history", hist, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no-change" in out

    def test_check_regression_exits_nonzero(self, tmp_path, capsys):
        hist = str(tmp_path / "history.jsonl")
        assert main(["bench", "--output", "-", "--history", hist]) == 0
        assert main(["bench", "--output", "-", "--history", hist]) == 0
        self.reports.append(fake_bench_report(serial=2.5))  # injected slowdown
        code = main(["bench", "--output", "-", "--history", hist, "--check"])
        out = capsys.readouterr().out
        assert code == 2
        assert "regressed" in out

    def test_check_without_baseline_is_neutral(self, tmp_path, capsys):
        hist = str(tmp_path / "history.jsonl")
        code = main(["bench", "--output", "-", "--history", hist, "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "insufficient-data" in out

    def test_check_against_committed_baseline_file(self, tmp_path, capsys):
        from repro.obs.history import HistoryStore, bench_entry

        baseline = tmp_path / "BASELINE.jsonl"
        store = HistoryStore(baseline)
        for _ in range(2):
            store.append(bench_entry(fake_bench_report()))
        code = main(
            ["bench", "--output", "-", "--history", "-",
             "--check", "--baseline", str(baseline)]
        )
        assert code == 0
        assert "no-change" in capsys.readouterr().out

    def test_speedup_none_printed_gracefully(self, tmp_path, capsys):
        report = fake_bench_report()
        report["meta"]["parallel_speedup"] = None
        report["meta"]["parallel_speedup_reason"] = "no parallelism available"
        report["meta"]["effective_jobs"] = 1
        self.reports.append(report)
        assert main(["bench", "--output", "-", "--history", "-"]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "no parallelism available" in out


class TestDashboardCommand:
    def test_dashboard_writes_file(self, tmp_path, monkeypatch, capsys):
        import repro.obs.dashboard as dashboard_mod
        from tests.obs.test_dashboard import make_data

        monkeypatch.setattr(
            dashboard_mod, "collect_dashboard_data",
            lambda **kwargs: make_data(),
        )
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--out", str(out), "--history", "-"]) == 0
        assert "dashboard written" in capsys.readouterr().out
        assert out.read_text().startswith("<!DOCTYPE html>")


def fake_profiled_report(serial=1.0, shares=(0.30, 0.20)):
    report = fake_bench_report(serial=serial)
    report["meta"]["profiled"] = True
    report["meta"]["hot_functions"] = [
        {"function": f"mod.func{i}", "phase": "fit", "calls": 5,
         "self_s": s, "cum_s": s, "share": s}
        for i, s in enumerate(shares)
    ]
    return report


class TestProfileParser:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.app == "matmul"
        assert args.policy == "plb-hec"
        assert args.flame == "profile.svg"
        assert args.collapsed is None
        assert args.json_out is None
        assert args.trace_out is None
        assert args.top == 10

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["profile", "--flame", "-", "--collapsed", "p.txt",
             "--json", "p.json", "--trace-out", "t.json", "--top", "5"]
        )
        assert args.flame == "-"
        assert args.collapsed == "p.txt"
        assert args.json_out == "p.json"
        assert args.trace_out == "t.json"
        assert args.top == 5

    @pytest.mark.parametrize("command", ["run", "compare", "bench"])
    def test_profile_flag_everywhere(self, command):
        assert build_parser().parse_args([command]).profile is False
        assert build_parser().parse_args([command, "--profile"]).profile is True


class TestProfileCommand:
    def test_writes_all_artifacts(self, capsys, tmp_path):
        import json

        from repro.obs.trace_export import validate_chrome_trace

        flame = tmp_path / "p.svg"
        collapsed = tmp_path / "p.txt"
        snap_path = tmp_path / "p.json"
        trace = tmp_path / "t.json"
        assert main(
            ["profile", "--app", "matmul", "--size", "4096",
             "--flame", str(flame), "--collapsed", str(collapsed),
             "--json", str(snap_path), "--trace-out", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "attributed to a named phase" in out
        assert "CPU time by phase" in out
        # Acceptance: self-contained SVG + loadable collapsed stacks.
        svg = flame.read_text()
        assert svg.startswith("<svg") and "<script" not in svg
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert int(value) > 0 and stack
        snap = json.loads(snap_path.read_text())
        named = sum(p["self_s"] for p in snap["phases"].values())
        assert named / snap["total_self_s"] >= 0.95  # >=95% named-phase
        doc = json.loads(trace.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(
            e.get("cat") == "cpu-profile" for e in doc["traceEvents"]
        )

    def test_flame_dash_skips_svg(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["profile", "--app", "matmul", "--size", "4096", "--flame", "-"]
        ) == 0
        assert "flamegraph written" not in capsys.readouterr().out
        assert not (tmp_path / "profile.svg").exists()

    def test_run_profile_prints_breakdown(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "4096", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "CPU time by phase" in out
        assert "Top" in out and "hot functions" in out


class TestBenchProfileCommand:
    @pytest.fixture(autouse=True)
    def fast_bench(self, monkeypatch):
        import repro.experiments.wallclock as wallclock

        self.reports = [fake_profiled_report()]
        self.calls = []
        def fake(**kwargs):
            self.calls.append(kwargs)
            return self.reports[-1]
        monkeypatch.setattr(wallclock, "run_wallclock_bench", fake)

    def test_bench_profile_flag_passed_through(self, capsys):
        assert main(["bench", "--output", "-", "--history", "-",
                     "--profile"]) == 0
        assert self.calls[-1]["profile"] is True
        assert "Hot functions" in capsys.readouterr().out

    def test_profiled_lap_recorded_and_never_gates(self, tmp_path, capsys):
        from repro.obs.history import HistoryStore

        hist = str(tmp_path / "history.jsonl")
        # Two profiled runs seed history; the third would "regress" 10x
        # but profiled laps never gate.
        for _ in range(2):
            assert main(["bench", "--output", "-", "--history", hist,
                         "--profile"]) == 0
        self.reports.append(fake_profiled_report(serial=10.0))
        code = main(["bench", "--output", "-", "--history", hist,
                     "--profile", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "insufficient-data" in out
        assert "never gate" in out
        entries = HistoryStore(hist).entries(kind="bench")
        assert all(e["profiled"] for e in entries)
        assert entries[0]["hot_functions"][0]["function"] == "mod.func0"

    def test_drift_advisory_clean(self, tmp_path, capsys):
        hist = str(tmp_path / "history.jsonl")
        for _ in range(2):
            assert main(["bench", "--output", "-", "--history", hist,
                         "--profile"]) == 0
        code = main(["bench", "--output", "-", "--history", hist,
                     "--profile", "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hot-path drift: none over 2 matched" in out

    def test_drift_advisory_flags_shifted_hot_path(self, tmp_path, capsys):
        hist = str(tmp_path / "history.jsonl")
        for _ in range(2):
            assert main(["bench", "--output", "-", "--history", hist,
                         "--profile"]) == 0
        self.reports.append(fake_profiled_report(shares=(0.70, 0.05)))
        code = main(["bench", "--output", "-", "--history", hist,
                     "--profile", "--check"])
        out = capsys.readouterr().out
        assert code == 0  # advisory: never changes the exit code
        assert "hot-path drift: mod.func0 grew" in out


class TestFaultInjectionCommand:
    def test_run_with_transient(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "2048", "--machines", "2",
             "--transient", "B.gpu0@0.05+0.02"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults: 1 down event(s), 1 recovery(ies)" in out

    def test_run_with_failure(self, capsys):
        assert main(
            ["run", "--app", "matmul", "--size", "2048", "--machines", "2",
             "--policy", "greedy", "--fail", "A.gpu0@0.02"]
        ) == 0
        assert "down event" in capsys.readouterr().out

    def test_unknown_device_named_in_error(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="'ghost'"):
            main(["run", "--app", "matmul", "--size", "1024",
                  "--fail", "ghost@0.1"])

    def test_malformed_spec_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--transient wants"):
            main(["run", "--transient", "A.gpu0@nope"])


class TestChaosCommand:
    def test_quick_campaign_green(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["chaos", "--runs", "2", "--quick", "--history", "hist",
             "--dashboard", "dash.html"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "-> OK" in out
        assert "plb-hec" in out and "greedy" in out
        # per-policy mean-attribution columns on the chaos table
        assert "fault_rec" in out and "rework" in out

        import json

        scorecard = json.loads((tmp_path / "chaos_scorecard.json").read_text())
        assert scorecard["total_runs"] == 2
        assert scorecard["all_invariants_ok"] is True
        assert all(r["faults"] for r in scorecard["runs"])

        html = (tmp_path / "dash.html").read_text()
        assert "<h2>Resilience</h2>" in html

        from repro.obs.history import HistoryStore

        entries = HistoryStore(tmp_path / "hist").entries(kind="chaos")
        assert len(entries) == 1
        assert entries[0]["summary"]["survival_rate"] == 1.0


class TestExplainParser:
    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.app == "matmul"
        assert args.policy == "plb-hec"
        assert args.out is None

    def test_explain_accepts_fault_flags(self):
        args = build_parser().parse_args(
            ["explain", "--fail", "A.gpu0@0.5", "--out", "e.jsonl"]
        )
        assert args.fail == ["A.gpu0@0.5"]
        assert args.out == "e.jsonl"

    def test_run_explain_out_and_metrics_format(self):
        args = build_parser().parse_args(
            ["run", "--explain-out", "e.jsonl", "--metrics-format", "prom"]
        )
        assert args.explain_out == "e.jsonl"
        assert args.metrics_format == "prom"
        assert build_parser().parse_args(["run"]).metrics_format == "json"

    def test_bad_metrics_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--metrics-format", "xml"])


class TestExplainCommand:
    def test_explain_prints_decisions_and_calibration(self, capsys):
        assert main(
            ["explain", "--app", "matmul", "--size", "2048", "--machines", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "trigger" in out
        assert "probe-round" in out
        assert "selection" in out
        assert "coverage" in out
        assert "Prediction calibration" in out

    def test_explain_writes_valid_artifact(self, capsys, tmp_path):
        from repro.obs.ledger import read_explain

        path = tmp_path / "explain.jsonl"
        assert main(
            ["explain", "--app", "matmul", "--size", "2048",
             "--machines", "2", "--out", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "explain ledger written to" in out
        parsed = read_explain(str(path))
        # 100% attribution: every executed block maps to a decision
        assert parsed["header"]["attribution"]["unattributed"] == 0
        assert parsed["header"]["attribution"]["attributed"] > 0
        assert parsed["header"]["decisions"] == len(parsed["decisions"])
        # the printed count is the decision count, not the line count
        assert f"({parsed['header']['decisions']} decision(s))" in out

    def test_explain_ledgerless_policy_fails_cleanly(self, capsys):
        assert main(
            ["explain", "--app", "matmul", "--size", "2048",
             "--machines", "2", "--policy", "greedy"]
        ) == 1
        assert "no decision ledger" in capsys.readouterr().out

    def test_run_explain_out(self, capsys, tmp_path):
        from repro.obs.ledger import read_explain

        path = tmp_path / "explain.jsonl"
        assert main(
            ["run", "--app", "matmul", "--size", "2048", "--machines", "2",
             "--explain-out", str(path)]
        ) == 0
        assert "explain ledger written to" in capsys.readouterr().out
        read_explain(str(path))

    def test_run_metrics_prom_format(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        assert main(
            ["run", "--app", "matmul", "--size", "2048", "--machines", "2",
             "--metrics-out", str(path), "--metrics-format", "prom"]
        ) == 0
        assert "(prom)" in capsys.readouterr().out
        text = path.read_text()
        assert "# TYPE" in text
        assert "plbhec_probe_rounds" in text

    def test_run_trace_out_carries_decision_instants(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["run", "--app", "matmul", "--size", "2048", "--machines", "2",
             "--trace-out", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        marks = [e for e in doc["traceEvents"] if e.get("cat") == "decision"]
        assert marks, "plb-hec runs must export decision instants"
        assert all(m["ph"] == "i" for m in marks)

    def test_chaos_table_has_decision_columns(self, capsys, tmp_path):
        assert main(
            ["chaos", "--app", "matmul", "--size", "1024",
             "--machines", "2", "--runs", "2", "--seed", "0",
             "--policies", "plb-hec,greedy",
             "--out", str(tmp_path / "scorecard.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "decisions" in out
        assert "fallbacks" in out


class TestTelemetryParser:
    def test_run_telemetry_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sample_interval is None
        assert args.series_out is None
        assert args.slo is None
        assert args.slo_report_out is None

    def test_run_telemetry_flags(self):
        args = build_parser().parse_args(
            ["run", "--sample-interval", "0", "--series-out", "s.jsonl",
             "--slo", "default", "--slo-report-out", "r.json"]
        )
        assert args.sample_interval == 0.0
        assert args.series_out == "s.jsonl"
        assert args.slo == "default"
        assert args.slo_report_out == "r.json"

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.series == "series.jsonl"
        assert args.once is False
        assert args.interval == 2.0
        assert args.width == 40
        assert args.slo_report is None


class TestTelemetryCommands:
    RUN = ["run", "--app", "matmul", "--size", "2048", "--machines", "2"]

    def test_series_out_validates_and_reports(self, capsys, tmp_path):
        from repro.obs.timeseries import read_series, validate_series

        path = tmp_path / "series.jsonl"
        assert main(self.RUN + ["--series-out", str(path)]) == 0
        assert "series written to" in capsys.readouterr().out
        lines = path.read_text().splitlines()
        assert validate_series(lines) == []
        header, store = read_series(path)
        assert header["interval"] > 0  # auto interval resolved
        assert store.values("completed_units")[-1] > 0

    def test_default_slo_passes_healthy_run(self, capsys, tmp_path):
        report_path = tmp_path / "slo_report.json"
        assert main(
            self.RUN + ["--slo", "default",
                        "--slo-report-out", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "SLO evaluation: default" in out
        assert "slo: OK" in out
        import json as _json

        report = _json.loads(report_path.read_text())
        assert report["ok"] is True

    def test_violated_slo_exits_2_and_stamps_trace(self, capsys, tmp_path):
        import json as _json

        spec_path = tmp_path / "impossible.slo.json"
        spec_path.write_text(
            _json.dumps(
                {
                    "name": "impossible",
                    "objectives": [
                        {"name": "no-goodput",
                         "expr": "max(goodput_units_per_s) < 0"}
                    ],
                }
            )
        )
        trace_path = tmp_path / "trace.json"
        code = main(
            self.RUN + ["--slo", str(spec_path),
                        "--trace-out", str(trace_path)]
        )
        assert code == 2
        assert "slo: FAIL" in capsys.readouterr().out
        doc = _json.loads(trace_path.read_text())
        alerts = [e for e in doc["traceEvents"] if e.get("cat") == "alert"]
        assert alerts, "SLO violations must stamp alert instants"
        assert any("no-goodput" in a.get("name", "") for a in alerts)

    def test_slo_report_out_requires_slo(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(self.RUN + ["--slo-report-out", "r.json"])

    def test_top_once_renders_frame(self, capsys, tmp_path):
        series = tmp_path / "series.jsonl"
        report = tmp_path / "slo_report.json"
        assert main(
            self.RUN + ["--series-out", str(series), "--slo", "default",
                        "--slo-report-out", str(report)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["top", "--once", "--series", str(series),
             "--slo-report", str(report)]
        ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "units left" in out
        assert "SLO: default" in out

    def test_top_missing_series_exits_1(self, capsys, tmp_path):
        assert main(
            ["top", "--once", "--series", str(tmp_path / "absent.jsonl")]
        ) == 1
        assert "repro run --series-out" in capsys.readouterr().err

    def test_chaos_table_has_slo_column(self, capsys, tmp_path):
        assert main(
            ["chaos", "--app", "matmul", "--size", "1024",
             "--machines", "2", "--runs", "2", "--seed", "0",
             "--policies", "plb-hec,greedy",
             "--out", str(tmp_path / "scorecard.json")]
        ) == 0
        assert "slo_viol" in capsys.readouterr().out


class TestExitCodeContract:
    """The exit-code table exists in exactly one place (EXIT_CODE_TABLE);
    README and --help must be renderings of it, never forks."""

    def readme_rows(self):
        import pathlib

        from repro import cli

        readme = (
            pathlib.Path(cli.__file__).parents[2] / "README.md"
        ).read_text()
        _, _, section = readme.partition("### Exit codes")
        assert section, "README lost its '### Exit codes' section"
        rows = []
        for line in section.splitlines():
            cells = [c.strip() for c in line.strip().strip("|").split("|")]
            if len(cells) != 3 or not cells[0].isdigit():
                continue
            rows.append((int(cells[0]), cells[1], cells[2]))
        return rows

    def test_readme_table_matches_code(self):
        from repro.cli import EXIT_CODE_TABLE

        assert self.readme_rows() == list(EXIT_CODE_TABLE)

    def test_help_epilog_matches_code(self):
        from repro.cli import EXIT_CODE_TABLE

        text = build_parser().format_help()
        assert "exit codes:" in text
        for code, name, meaning in EXIT_CODE_TABLE:
            assert f"{code}" in text and name in text
            # argparse re-wraps nothing in a RawDescription epilog, so
            # the full meaning must appear verbatim
            assert meaning in text

    def test_table_covers_exit_codes_in_use(self):
        from repro.cli import EXIT_CODE_TABLE
        from repro.obs.regress import EXIT_CODES

        codes = {code for code, _, _ in EXIT_CODE_TABLE}
        assert {0, 1, 3} <= codes
        assert EXIT_CODES["regressed"] in codes


class TestWhyParser:
    def test_why_defaults(self):
        args = build_parser().parse_args(["why"])
        assert args.app == "matmul"
        assert args.policy == "plb-hec"
        assert args.out == "critpath.json"
        assert args.speedup_factor == 2.0
        assert args.assert_bound is False
        assert args.trace_out is None

    def test_why_flags(self):
        args = build_parser().parse_args(
            ["why", "--out", "-", "--speedup-factor", "4",
             "--assert-bound", "--trace-out", "t.json",
             "--transient", "B.gpu0@0.05+0.02"]
        )
        assert args.out == "-"
        assert args.speedup_factor == 4.0
        assert args.assert_bound is True
        assert args.trace_out == "t.json"
        assert args.transient == ["B.gpu0@0.05+0.02"]


class TestWhyCommand:
    RUN = ["why", "--app", "matmul", "--size", "2048", "--machines", "2"]

    def test_writes_valid_artifact_and_reports(self, capsys, tmp_path):
        import json

        from repro.obs.critpath import validate_critpath

        path = tmp_path / "critpath.json"
        assert main(self.RUN + ["--out", str(path), "--assert-bound"]) == 0
        out = capsys.readouterr().out
        assert "Makespan attribution" in out
        assert "fully attributed" in out
        assert "What-if lower bounds" in out
        assert "bottleneck:" in out
        assert "decisions on the critical path" in out
        assert "critpath written to" in out
        doc = json.loads(path.read_text())
        assert validate_critpath(doc) == []

    def test_out_dash_skips_artifact(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(self.RUN + ["--out", "-"]) == 0
        assert "critpath written" not in capsys.readouterr().out
        assert not (tmp_path / "critpath.json").exists()

    def test_trace_out_flags_critical_path(self, capsys, tmp_path):
        import json

        from repro.obs.trace_export import validate_chrome_trace

        trace_path = tmp_path / "why_trace.json"
        assert main(
            self.RUN + ["--out", "-", "--trace-out", str(trace_path)]
        ) == 0
        doc = json.loads(trace_path.read_text())
        assert validate_chrome_trace(doc) == []
        flagged = [e for e in doc["traceEvents"]
                   if e.get("args", {}).get("critpath")]
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "critpath"]
        assert flagged and flows

    def test_faulted_run_attributes_recovery(self, capsys, tmp_path):
        import json

        path = tmp_path / "critpath.json"
        assert main(
            self.RUN + ["--out", str(path), "--assert-bound",
                        "--transient", "B.gpu0@0.02+0.05"]
        ) == 0
        doc = json.loads(path.read_text())
        categories = doc["categories"]
        assert abs(sum(categories.values()) - doc["makespan"]) < 1e-9
