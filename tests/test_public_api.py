"""Public-API surface tests: exports exist, are documented, and import.

These meta-tests keep the package honest as it grows: everything listed
in an ``__all__`` must exist, and every public callable and class must
carry a docstring (the repository promises a documented public API).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.apps",
    "repro.balancers",
    "repro.cluster",
    "repro.core",
    "repro.experiments",
    "repro.modeling",
    "repro.obs",
    "repro.runtime",
    "repro.sim",
    "repro.solver",
    "repro.util",
]


def walk_modules():
    seen = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                seen.append(importlib.import_module(f"{name}.{info.name}"))
    return seen


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_exist(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name}"

    def test_top_level_quickstart_symbols(self):
        for symbol in (
            "Runtime", "paper_cluster", "PLBHeC", "Greedy", "Acosta",
            "HDSS", "Oracle", "StaticProfile", "ReproError",
        ):
            assert hasattr(repro, symbol)

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    def test_every_module_documented(self):
        for module in walk_modules():
            assert module.__doc__, f"{module.__name__} has no module docstring"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for module in walk_modules():
            public = getattr(module, "__all__", None)
            if public is None:
                continue
            for name in public:
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_documented(self):
        undocumented = []
        for module in walk_modules():
            for name in getattr(module, "__all__", []) or []:
                obj = getattr(module, name)
                if not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export; checked at its home module
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not inspect.getdoc(attr):
                        undocumented.append(f"{obj.__name__}.{attr_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestPolicyContract:
    def test_all_policies_share_names(self):
        from repro.runtime import SchedulingPolicy

        policies = [
            repro.Greedy(), repro.Acosta(), repro.HDSS(), repro.PLBHeC(),
        ]
        names = [p.name for p in policies]
        assert len(set(names)) == len(names)
        for p in policies:
            assert isinstance(p, SchedulingPolicy)
