"""Tests for repro.balancers.hdss."""

import pytest

from repro.apps import MatMul
from repro.balancers import HDSS
from repro.errors import ConfigurationError
from repro.runtime import Runtime


class TestHDSSConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HDSS(max_adaptive_rounds=1)
        with pytest.raises(ConfigurationError):
            HDSS(adaptive_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HDSS(plateau_tol=0.0)
        with pytest.raises(ConfigurationError):
            HDSS(taper=0.0)
        with pytest.raises(ConfigurationError):
            HDSS(min_block=0)


class TestHDSSBehaviour:
    def test_completes_domain(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(), app.total_units, 8)
        assert res.trace.total_units() == 4096

    def test_two_phases_present(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(), app.total_units, 8)
        phases = {r.phase for r in res.trace.records}
        assert phases == {"probe", "exec"}

    def test_uniform_probe_sizes_default(self, small_cluster):
        """The paper's HDSS probes with device-independent doubling sizes."""
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(), app.total_units, 8)
        probe = [r for r in res.trace.records if r.phase == "probe"]
        by_round = {}
        for r in probe:
            by_round.setdefault(r.step, set()).add(r.units)
        for round_idx, sizes in by_round.items():
            assert len(sizes) == 1, f"round {round_idx} sizes differ: {sizes}"

    def test_probe_sizes_double(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(), app.total_units, 8)
        probe = [r for r in res.trace.records if r.phase == "probe"]
        sizes = sorted({r.units for r in probe})
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_weights_fitted_and_ordered(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = HDSS()
        rt.run(policy, app.total_units, 8)
        w = policy.weights
        assert set(w) == {d.device_id for d in small_cluster.devices()}
        assert all(v > 0 for v in w.values())
        assert w["alpha.gpu0"] > w["beta.cpu"]

    def test_adaptive_budget_respected(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(adaptive_fraction=0.04), app.total_units, 8)
        probe_units = sum(
            r.units for r in res.trace.records if r.phase == "probe"
        )
        # one extra round can start before the budget check fires
        assert probe_units <= 0.04 * 4096 + len(small_cluster.devices()) * 8 * 8

    def test_completion_blocks_taper(self, small_cluster):
        app = MatMul(n=8192)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(), app.total_units, 8)
        gpu_exec = [
            r.units
            for r in res.trace.records_for("alpha.gpu0")
            if r.phase == "exec"
        ]
        if len(gpu_exec) >= 3:
            assert gpu_exec[0] >= gpu_exec[-1]

    def test_per_device_variant_scales_probes(self, small_cluster):
        app = MatMul(n=8192)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(HDSS(per_device_growth=True), app.total_units, 8)
        probe = [r for r in res.trace.records if r.phase == "probe"]
        fast = max(r.units for r in probe if r.worker_id == "alpha.gpu0")
        slow = max(r.units for r in probe if r.worker_id == "beta.cpu")
        # the fast device grows further before its rate plateaus
        assert fast >= slow

    def test_per_device_variant_faster_than_uniform(self, small_cluster):
        app = MatMul(n=8192)
        uniform = Runtime(small_cluster, app.codelet(), seed=0).run(
            HDSS(), app.total_units, 8
        )
        async_v = Runtime(small_cluster, app.codelet(), seed=0).run(
            HDSS(per_device_growth=True), app.total_units, 8
        )
        assert async_v.makespan < uniform.makespan
