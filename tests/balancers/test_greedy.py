"""Tests for repro.balancers.greedy."""

import pytest

from repro.apps import MatMul
from repro.balancers import Greedy
from repro.runtime import Runtime


class TestGreedy:
    def test_validation(self):
        with pytest.raises(ValueError):
            Greedy(num_pieces=0)
        with pytest.raises(ValueError):
            Greedy(piece_size=0)

    def test_piece_size_from_division(self, small_cluster):
        app = MatMul(n=640)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = Greedy(num_pieces=64)
        res = rt.run(policy, app.total_units, 8)
        assert policy.piece_size == 10
        sizes = {r.units for r in res.trace.records}
        assert sizes == {10}

    def test_explicit_piece_size_overrides(self, small_cluster):
        app = MatMul(n=100)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = Greedy(piece_size=25)
        rt.run(policy, app.total_units, 8)
        assert policy.piece_size == 25

    def test_piece_at_least_one(self, small_cluster):
        app = MatMul(n=16)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = Greedy(num_pieces=64)
        res = rt.run(policy, app.total_units, 4)
        assert policy.piece_size == 1
        assert res.trace.total_units() == 16

    def test_self_scheduling_gives_faster_device_more(self, small_cluster):
        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Greedy(num_pieces=64), app.total_units, 8)
        units = res.trace.allocated_units()
        # the big GPU outruns the small CPU under self-scheduling
        assert units["alpha.gpu0"] > units["beta.cpu"]

    def test_no_overhead_charged(self, small_cluster):
        app = MatMul(n=512)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Greedy(), app.total_units, 8)
        assert res.solver_overhead_s == 0.0
