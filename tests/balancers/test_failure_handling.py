"""Unit tests for policy-level device-failure handling.

The integration suite exercises failures end-to-end; these tests verify
the per-policy bookkeeping directly — barriers must close, shares must
renormalise, dead devices must never be assigned again.
"""

import pytest

from repro import Acosta, Greedy, HDSS, PLBHeC, Runtime
from repro.apps import MatMul
from repro.runtime.sim_executor import DeviceFailure


def run_with(policy, small_cluster, *, fail, at, n=8192, seed=5):
    app = MatMul(n=n)
    rt = Runtime(
        small_cluster,
        app.codelet(),
        seed=seed,
        failures=(DeviceFailure(device_id=fail, time=at),),
    )
    return rt.run(policy, app.total_units, app.default_initial_block_size())


class TestHDSSFailure:
    def test_probe_barrier_closes_without_dead_device(self, small_cluster):
        """Uniform-round HDSS must not wait for a device that died mid-probe."""
        policy = HDSS()
        res = run_with(policy, small_cluster, fail="beta.cpu", at=0.05)
        assert res.trace.total_units() >= 8192
        assert "beta.cpu" not in policy._ids

    def test_weights_exclude_dead_device(self, small_cluster):
        policy = HDSS()
        run_with(policy, small_cluster, fail="beta.cpu", at=0.05)
        assert "beta.cpu" not in policy.weights

    def test_completion_phase_failure(self, small_cluster):
        policy = HDSS()
        res = run_with(policy, small_cluster, fail="alpha.gpu0", at=0.6)
        assert res.trace.total_units() >= 8192


class TestAcostaFailure:
    def test_step_barrier_closes(self, small_cluster):
        policy = Acosta()
        res = run_with(policy, small_cluster, fail="beta.gpu0", at=0.1)
        assert res.trace.total_units() >= 8192

    def test_shares_renormalised(self, small_cluster):
        policy = Acosta()
        run_with(policy, small_cluster, fail="beta.gpu0", at=0.1)
        assert "beta.gpu0" not in policy._shares
        assert sum(policy._shares.values()) == pytest.approx(1.0)


class TestPLBFailure:
    def test_probe_round_advances_past_dead_device(self, small_cluster):
        policy = PLBHeC()
        res = run_with(policy, small_cluster, fail="beta.cpu", at=0.05)
        assert res.trace.total_units() >= 8192
        assert "beta.cpu" not in policy._ids
        assert "beta.cpu" not in policy.models

    def test_in_flight_accounting_released(self, small_cluster):
        policy = PLBHeC()
        run_with(policy, small_cluster, fail="alpha.cpu", at=0.1)
        # every dispatched block was either completed or released
        assert policy._in_flight == 0

    def test_partition_excludes_dead_device(self, small_cluster):
        policy = PLBHeC(num_steps=8)
        res = run_with(policy, small_cluster, fail="alpha.gpu0", at=0.5, n=16384)
        last = policy.selection_history[-1]
        assert last.units_by_device.get("alpha.gpu0", 0.0) == 0.0


class TestGreedyFailure:
    def test_stateless_policy_unaffected(self, small_cluster):
        res = run_with(Greedy(), small_cluster, fail="alpha.gpu0", at=0.1)
        assert res.trace.total_units() >= 8192
