"""Tests for repro.balancers.oracle and repro.balancers.static_profile."""

import pytest

from repro.apps import MatMul
from repro.balancers import Greedy, Oracle, StaticProfile
from repro.cluster import GroundTruth
from repro.errors import ConfigurationError
from repro.runtime import Runtime
from tests.conftest import make_fitted_models


class TestOracle:
    def test_requires_ground_truth(self):
        with pytest.raises(ConfigurationError):
            Oracle("nope")  # type: ignore[arg-type]

    def test_near_ideal_makespan(self, small_cluster):
        app = MatMul(n=4096)
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        rt = Runtime(small_cluster, app.codelet(), seed=0, noise_sigma=0.0)
        res = rt.run(Oracle(gt), app.total_units, 8)
        # every device runs one block; finish times nearly equal
        idle = res.idle_fractions
        assert max(idle.values()) < 0.05

    def test_beats_greedy(self, small_cluster):
        app = MatMul(n=4096)
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        oracle_run = Runtime(small_cluster, app.codelet(), seed=0).run(
            Oracle(gt), app.total_units, 8
        )
        greedy_run = Runtime(small_cluster, app.codelet(), seed=0).run(
            Greedy(), app.total_units, 8
        )
        assert oracle_run.makespan <= greedy_run.makespan * 1.001

    def test_hamilton_rounding_exact(self, small_cluster):
        app = MatMul(n=1023)  # awkward total to force fractional shares
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Oracle(gt), app.total_units, 8)
        assert res.trace.total_units() == 1023

    def test_one_block_per_device(self, small_cluster):
        app = MatMul(n=2048)
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Oracle(gt), app.total_units, 8)
        for d in res.trace.worker_ids:
            assert len(res.trace.records_for(d)) <= 1


class TestStaticProfile:
    def test_requires_profiles(self):
        with pytest.raises(ConfigurationError):
            StaticProfile({})

    def test_missing_device_rejected(self, small_cluster, mm_ground_truth):
        models = make_fitted_models(mm_ground_truth)
        del models["beta.cpu"]
        app = MatMul(n=1024)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        with pytest.raises(ConfigurationError, match="beta.cpu"):
            rt.run(StaticProfile(models), app.total_units, 8)

    def test_distributes_by_offline_profiles(self, small_cluster, mm_ground_truth):
        models = make_fitted_models(mm_ground_truth)
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = StaticProfile(models)
        res = rt.run(policy, app.total_units, 8)
        assert res.trace.total_units() == 4096
        units = res.trace.allocated_units()
        assert units["alpha.gpu0"] > units["beta.cpu"]

    def test_num_steps_waves(self, small_cluster, mm_ground_truth):
        models = make_fitted_models(mm_ground_truth)
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(StaticProfile(models, num_steps=4), app.total_units, 8)
        per_device = {
            d: len(res.trace.records_for(d)) for d in res.trace.worker_ids
        }
        assert all(count <= 4 for count in per_device.values())

    def test_no_adaptation(self, small_cluster, mm_ground_truth):
        """Static stays static: exactly one partition, zero rebalances."""
        models = make_fitted_models(mm_ground_truth)
        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = StaticProfile(models)
        res = rt.run(policy, app.total_units, 8)
        assert res.num_rebalances == 0
