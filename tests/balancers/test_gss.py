"""Tests for repro.balancers.gss."""

import pytest

from repro.apps import MatMul
from repro.balancers import GuidedSelfScheduling
from repro.errors import ConfigurationError
from repro.runtime import Runtime
from repro.runtime.sim_executor import DeviceFailure


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GuidedSelfScheduling(divisor=0.0)
        with pytest.raises(ConfigurationError):
            GuidedSelfScheduling(min_chunk=0)


class TestBehaviour:
    def test_completes_domain(self, small_cluster):
        app = MatMul(n=2048)
        res = Runtime(small_cluster, app.codelet(), seed=0).run(
            GuidedSelfScheduling(), app.total_units, 8
        )
        assert res.trace.total_units() == 2048

    def test_chunks_taper_geometrically(self, small_cluster):
        app = MatMul(n=4096)
        res = Runtime(small_cluster, app.codelet(), seed=0).run(
            GuidedSelfScheduling(), app.total_units, 8
        )
        first_wave = [
            r.units for r in res.trace.records if r.dispatch_time == 0.0
        ]
        # the first dispatched chunk is the fair share remaining/P
        assert max(first_wave) == 4096 // len(small_cluster.devices())
        last = min(res.trace.records, key=lambda r: -r.dispatch_time)
        assert max(first_wave) > last.units

    def test_min_chunk_floor(self, small_cluster):
        app = MatMul(n=2048)
        res = Runtime(small_cluster, app.codelet(), seed=0).run(
            GuidedSelfScheduling(min_chunk=13), app.total_units, 8
        )
        tail = sorted(r.units for r in res.trace.records)[:3]
        # every chunk except the domain-clamped final one obeys the floor
        assert tail[1] >= 13 or tail[0] < 13

    def test_heterogeneity_blindness_hurts(self, small_cluster):
        """The textbook failure: GSS's first fair-share chunk can land on
        the slowest device, which then straggles the whole run."""
        from repro.core import PLBHeC

        app = MatMul(n=8192)
        gss = Runtime(small_cluster, app.codelet(), seed=0).run(
            GuidedSelfScheduling(), app.total_units, 8
        )
        plb = Runtime(small_cluster, app.codelet(), seed=0).run(
            PLBHeC(), app.total_units, 8
        )
        assert plb.makespan < gss.makespan

    def test_survives_failure(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=0,
            failures=(DeviceFailure(device_id="beta.cpu", time=0.2),),
        )
        res = rt.run(GuidedSelfScheduling(), app.total_units, 8)
        assert res.trace.total_units() >= 4096
