"""Tests for repro.balancers.acosta."""

import pytest

from repro.apps import MatMul
from repro.balancers import Acosta
from repro.errors import ConfigurationError
from repro.runtime import Runtime


class TestAcostaConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Acosta(threshold=0.0)
        with pytest.raises(ConfigurationError):
            Acosta(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            Acosta(smoothing=1.5)
        with pytest.raises(ConfigurationError):
            Acosta(ramp=0.5)
        with pytest.raises(ConfigurationError):
            Acosta(max_step_fraction=0.0)


class TestAcostaBehaviour:
    def test_completes_domain(self, small_cluster):
        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Acosta(), app.total_units, 8)
        assert res.trace.total_units() == 2048

    def test_first_step_is_probe_sized(self, small_cluster):
        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Acosta(), app.total_units, 8)
        step1 = [r for r in res.trace.records if r.step == 1]
        assert all(r.units == 8 for r in step1)
        assert len(step1) == len(small_cluster.devices())

    def test_steps_are_synchronised(self, small_cluster):
        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Acosta(), app.total_units, 8)
        # within a step, every start time is >= every previous step's end
        by_step = {}
        for r in res.trace.records:
            by_step.setdefault(r.step, []).append(r)
        steps = sorted(by_step)
        for earlier, later in zip(steps, steps[1:]):
            end_prev = max(r.end_time for r in by_step[earlier])
            start_next = min(r.start_time for r in by_step[later])
            assert start_next >= end_prev - 1e-9

    def test_shares_converge_toward_speed(self, small_cluster):
        app = MatMul(n=8192)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = Acosta()
        rt.run(policy, app.total_units, 8)
        shares = policy._shares
        assert shares["alpha.gpu0"] > shares["beta.cpu"]

    def test_asymptotic_convergence_retains_equal_bias(self, small_cluster):
        """After one update the share still carries the equal-split prior."""
        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        policy = Acosta(smoothing=0.35)
        rt.run(policy, app.total_units, 8)
        n = len(small_cluster.devices())
        # slowest device share stays above its true tiny fraction
        assert policy._shares["beta.cpu"] > 0.005

    def test_quanta_ramp_up(self, small_cluster):
        app = MatMul(n=8192)
        rt = Runtime(small_cluster, app.codelet(), seed=0)
        res = rt.run(Acosta(ramp=2.0), app.total_units, 8)
        by_step = {}
        for r in res.trace.records:
            by_step[r.step] = by_step.get(r.step, 0) + r.units
        steps = sorted(by_step)
        mids = steps[1:-1]  # ignore probe and clamped tail
        for a, b in zip(mids, mids[1:]):
            assert by_step[b] >= by_step[a] * 0.9
