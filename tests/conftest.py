"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import MatMul
from repro.cluster import (
    CPUSpec,
    GPUArch,
    GPUSpec,
    GroundTruth,
    KernelCharacteristics,
    paper_cluster,
)
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster
from repro.modeling import DeviceModel, PerfProfile


@pytest.fixture
def small_cluster() -> Cluster:
    """Two small machines (one CPU + one GPU each) for fast tests."""
    alpha = Machine(
        name="alpha",
        cpu=CPUSpec(model="test-cpu-8", cores=8, clock_ghz=3.0),
        gpus=(
            GPUSpec(
                model="test-gpu-big",
                cores=2048,
                sms=16,
                clock_ghz=1.0,
                mem_bandwidth_gbs=200.0,
                mem_gb=4.0,
                arch=GPUArch.KEPLER,
            ),
        ),
    )
    beta = Machine(
        name="beta",
        cpu=CPUSpec(model="test-cpu-4", cores=4, clock_ghz=2.5),
        gpus=(
            GPUSpec(
                model="test-gpu-small",
                cores=512,
                sms=8,
                clock_ghz=1.2,
                mem_bandwidth_gbs=100.0,
                mem_gb=2.0,
                arch=GPUArch.FERMI,
            ),
        ),
    )
    return Cluster(machines=(alpha, beta))


@pytest.fixture
def paper4() -> Cluster:
    """The paper's four-machine scenario (one GPU per machine)."""
    return paper_cluster(4)


@pytest.fixture
def mm_kernel() -> KernelCharacteristics:
    """A matmul-like kernel characterisation (n=4096)."""
    return MatMul(n=4096).kernel_characteristics()


@pytest.fixture
def mm_ground_truth(small_cluster, mm_kernel) -> GroundTruth:
    """Ground truth for the small cluster under the matmul kernel."""
    return GroundTruth(small_cluster, mm_kernel)


def make_fitted_models(
    ground_truth: GroundTruth,
    sizes=(8, 16, 64, 256, 1024),
    *,
    noise_sigma: float = 0.0,
    seed: int = 0,
) -> dict[str, DeviceModel]:
    """Fit per-device models from noisy ground-truth observations."""
    rng = np.random.default_rng(seed)
    models: dict[str, DeviceModel] = {}
    for device in ground_truth.cluster.devices():
        did = device.device_id
        profile = PerfProfile(did)
        for u in sizes:
            factor = float(np.exp(rng.normal(0.0, noise_sigma))) if noise_sigma else 1.0
            profile.add(
                u,
                ground_truth.exec_time(did, u) * factor,
                ground_truth.transfer_time(did, u),
            )
        models[did] = profile.fit()
    return models


@pytest.fixture
def fitted_models(mm_ground_truth) -> dict[str, DeviceModel]:
    """Fitted models for the small cluster (noise-free)."""
    return make_fitted_models(mm_ground_truth)
