"""The tutorial's code must actually work (docs/TUTORIAL.md)."""

import numpy as np
import pytest

from repro import PLBHeC, Runtime
from repro.apps import Application
from repro.cluster import KernelCharacteristics
from repro.runtime import SchedulingPolicy


class RayBatch(Application):
    """The tutorial's custom application, verbatim in structure."""

    name = "raybatch"

    def __init__(self, num_rays: int, *, bounces: int = 8, seed: int = 0):
        self.num_rays = num_rays
        self.bounces = bounces
        self.seed = seed

    @property
    def total_units(self) -> int:
        return self.num_rays

    def kernel_characteristics(self):
        return KernelCharacteristics(
            name=self.name,
            flops_per_unit=50_000.0 * self.bounces,
            bytes_in_per_unit=32.0,
            bytes_out_per_unit=12.0,
            gpu_efficiency=0.5,
            gpu_half_units=20_000.0,
            cpu_half_units=500.0,
            gpu_half_scaling="cores",
        )

    def cpu_kernel(self, start, count):
        rng = np.random.default_rng((self.seed, start))
        return rng.random((count, 3))

    def verify(self, results):
        return self.coverage_ok(results, self.total_units)

    def default_initial_block_size(self):
        return max(self.num_rays // 256, 1)


class ChunkedRoundRobin(SchedulingPolicy):
    """The tutorial's custom policy, verbatim in structure."""

    name = "chunked-rr"

    def __init__(self, fraction: float = 0.05):
        self.fraction = fraction

    def setup(self, ctx):
        super().setup(ctx)
        self.remaining = ctx.total_units

    def next_block(self, worker_id, now):
        return max(int(self.remaining * self.fraction), 1)

    def on_block_dispatched(self, worker_id, granted, now):
        self.remaining -= granted

    def on_task_finished(self, record, remaining, now):
        self.remaining = remaining


class TestTutorialApplication:
    def test_runs_under_plb_hec(self, small_cluster):
        app = RayBatch(100_000)
        result = Runtime(small_cluster, app.codelet(), seed=1).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        assert result.trace.total_units() == 100_000

    def test_real_backend_and_verify(self, small_cluster):
        app = RayBatch(2_000)
        result = Runtime(small_cluster, app.codelet(), backend="real").run(
            ChunkedRoundRobin(), app.total_units, 8
        )
        assert app.verify(result.results)


class TestTutorialSweeps:
    def test_sweep_snippet_runs(self):
        """The §5 run_sweep snippet, verbatim in structure."""
        from repro.experiments import PointSpec, SweepStats, run_sweep

        specs = [
            PointSpec("matmul", size, num_machines=2,
                      policies=("greedy", "plb-hec"), replications=1)
            for size in (1024, 2048)
        ]
        stats = SweepStats()
        points = run_sweep(specs, jobs=1, cache=None, stats=stats)
        assert stats.summary().startswith("jobs=1 cache_hits=0 wall=")
        assert [p.size for p in points] == [1024, 2048]
        for point in points:
            assert point.outcomes["plb-hec"].mean_makespan > 0


class TestTutorialObservability:
    def test_metrics_snippet_runs(self, small_cluster):
        """The §6 registry snippet, verbatim in structure."""
        from repro.obs import MetricsRegistry, get_registry
        from repro.obs.metrics import set_registry

        previous = set_registry(MetricsRegistry())
        try:
            app = RayBatch(100_000)
            Runtime(small_cluster, app.codelet(), seed=1).run(
                PLBHeC(), app.total_units, app.default_initial_block_size()
            )
            snap = get_registry().snapshot()
            assert snap["counters"]["plbhec.probe_rounds"] > 0
            assert snap["counters"]["ipm.iterations"] > 0
            assert any(k.startswith("plbhec.r2{device=") for k in snap["gauges"])
            assert snap["histograms"]["ipm.solve_ms"]["p90"] >= 0.0
        finally:
            set_registry(previous)

    def test_trace_export_snippet_runs(self, small_cluster, tmp_path):
        """The §6 export snippet: library-level write + validate."""
        import json

        from repro.obs import write_chrome_trace
        from repro.obs.trace_export import validate_chrome_trace

        app = RayBatch(100_000)
        result = Runtime(small_cluster, app.codelet(), seed=1).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        path = write_chrome_trace(result.trace, tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        assert result.run_id.startswith("run-")


class TestTutorialPolicy:
    def test_completes_domain(self, small_cluster):
        app = RayBatch(50_000)
        result = Runtime(small_cluster, app.codelet(), seed=1).run(
            ChunkedRoundRobin(0.1), app.total_units, 8
        )
        assert result.trace.total_units() == 50_000

    def test_guided_blocks_shrink(self, small_cluster):
        app = RayBatch(50_000)
        result = Runtime(small_cluster, app.codelet(), seed=1).run(
            ChunkedRoundRobin(0.1), app.total_units, 8
        )
        sizes = [r.units for r in sorted(result.trace.records, key=lambda r: r.dispatch_time)]
        assert sizes[0] > sizes[-1]

    def test_custom_cluster_from_tutorial(self):
        from repro.cluster import CPUSpec, GPUArch, GPUSpec, Cluster
        from repro.cluster.machine import Machine
        from repro.cluster.network import NetworkSpec

        node = Machine(
            name="n0",
            cpu=CPUSpec(model="EPYC-lite", cores=16, clock_ghz=2.8, cache_mb=64.0),
            gpus=(
                GPUSpec(
                    model="mid-gpu", cores=3072, sms=24, clock_ghz=1.1,
                    mem_bandwidth_gbs=400.0, mem_gb=8.0, arch=GPUArch.MAXWELL,
                ),
            ),
        )
        cluster = Cluster(machines=(node,), network=NetworkSpec(bandwidth_gbs=2.5))
        app = RayBatch(20_000)
        result = Runtime(cluster, app.codelet(), seed=1).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        assert result.trace.total_units() == 20_000


class TestTutorialProfiling:
    def test_profiling_snippet_runs(self, small_cluster, tmp_path):
        """The §8 capture snippet, verbatim in structure."""
        from repro.obs import phase_breakdown, profiling, write_flamegraph

        app = RayBatch(100_000)
        runtime = Runtime(small_cluster, app.codelet(), seed=1)
        with profiling() as prof:
            runtime.run(
                PLBHeC(), app.total_units, app.default_initial_block_size()
            )
        snap = prof.snapshot()
        breakdown = phase_breakdown(snap)
        assert sum(d["share"] for d in breakdown.values()) == pytest.approx(1.0)
        assert breakdown["execute"]["self_s"] > 0.0
        path = write_flamegraph(tmp_path / "p.svg", snap)
        assert path.read_text().startswith("<svg")


class TestTutorialResilience:
    def test_transient_snippet_runs(self, small_cluster):
        """The §9 fault-model snippet, verbatim in structure."""
        from repro.runtime.sim_executor import TransientFailure

        app = RayBatch(100_000)
        rt = Runtime(
            small_cluster, app.codelet(), seed=3,
            transients=(
                TransientFailure("alpha.gpu0", time=0.05, downtime=0.03),
            ),
        )
        result = rt.run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        assert result.trace.total_units() >= app.total_units
        assert [d for _, d in result.trace.recoveries] == ["alpha.gpu0"]

    def test_chaos_snippet_runs(self):
        """The §9 campaign snippet, verbatim in structure."""
        from repro.resilience import ChaosConfig, run_campaign

        config = ChaosConfig(apps=("matmul",), sizes=(2048,),
                             policies=("plb-hec", "greedy"), runs=4, seed=0,
                             max_faults=1)
        scorecard = run_campaign(config, jobs=2)
        assert scorecard["all_invariants_ok"]
        assert 0.0 <= scorecard["policies"]["plb-hec"]["survival_rate"] <= 1.0


class TestTutorialExplain:
    def test_ledger_snippet_runs(self, small_cluster):
        """The §10 decision-ledger snippet, verbatim in structure."""
        from repro.apps import MatMul

        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=7, noise_sigma=0.02)
        result = rt.run(
            PLBHeC(fixed_overhead_s=0.01),
            app.total_units,
            app.default_initial_block_size(),
        )
        ledger = result.ledger
        data = ledger.to_dict()
        assert data["attribution"]["unattributed"] == 0  # 100% coverage
        assert {d.trigger for d in ledger.decisions} >= {
            "probe-round", "selection",
        }
        cal = ledger.device_calibration("alpha.gpu0")
        assert cal.count > 0
        # the tutorial formats these; they must be finite to format
        for value in (cal.mape, cal.bias, cal.drift):
            assert value == value  # not NaN


class TestTutorialTelemetry:
    """§11: the sampler/SLO snippets, verbatim in structure."""

    def _sampled_result(self, small_cluster):
        from repro.obs import ClusterSampler

        app = RayBatch(100_000)
        sampler = ClusterSampler()  # auto interval
        rt = Runtime(small_cluster, app.codelet(), seed=7, noise_sigma=0.02)
        result = rt.run(
            PLBHeC(fixed_overhead_s=0.01),
            app.total_units,
            app.default_initial_block_size(),
            sampler=sampler,
        )
        return sampler, result

    def test_sampler_snippet_runs(self, small_cluster):
        sampler, _ = self._sampled_result(small_cluster)
        store = sampler.store
        util = store.aggregate("device_util{device=alpha.gpu0}")
        assert util["count"] > 0
        assert 0.0 <= util["mean"] <= 1.0
        assert util["p95"] >= util["p50"] >= util["min"]
        assert store.values("fairness")[-1] > 0.0

    def test_slo_snippet_runs(self, small_cluster):
        from repro.obs import DEFAULT_SLO_SPEC, evaluate_slo

        sampler, result = self._sampled_result(small_cluster)
        report = evaluate_slo(
            DEFAULT_SLO_SPEC, sampler.store, run_id=result.run_id
        )
        assert report["ok"]
        for row in report["objectives"]:
            assert row["verdict"] in ("pass", "fail", "no-data")

    def test_spec_file_snippet_loads(self, tmp_path):
        import json

        from repro.obs import load_slo_spec

        doc = {
            "name": "ci",
            "objectives": [
                {"name": "device-idle",
                 "expr": "mean(device_idle_frac) < 0.9",
                 "severity": "warning"},
                {"name": "completion", "expr": "last(backlog_units) <= 0"},
                {"name": "goodput", "expr": "max(goodput_units_per_s) > 0",
                 "budget": 0.05, "window": 0.5},
            ],
        }
        path = tmp_path / "ci.slo.json"
        path.write_text(json.dumps(doc))
        spec = load_slo_spec(path)
        assert [o.name for o in spec.objectives] == [
            "device-idle", "completion", "goodput",
        ]
        assert spec.objectives[2].budget == 0.05

    def test_sweep_series_snippet_runs(self):
        from repro.experiments import PointSpec, SweepStats, run_sweep

        stats = SweepStats()
        run_sweep(
            [PointSpec("matmul", 2048, num_machines=2,
                       policies=("plb-hec",), replications=1,
                       fixed_overhead_s=0.01, sample_interval=0.0)],
            jobs=1, cache=None, stats=stats,
        )
        (payload,) = stats.payloads
        assert payload["series"]["samples"] > 0


class TestTutorialCritpath:
    """Section 12: critical path & makespan attribution (repro why)."""

    def _analysis(self, small_cluster):
        from repro.apps import MatMul
        from repro.obs import analyze_trace

        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=7, noise_sigma=0.02)
        result = rt.run(
            PLBHeC(fixed_overhead_s=0.01),
            app.total_units, app.default_initial_block_size(),
        )
        return analyze_trace(result.trace)

    def test_attribution_snippet_runs(self, small_cluster):
        from repro.obs import category_shares, validate_critpath

        analysis = self._analysis(small_cluster)
        assert validate_critpath(analysis) == []          # schema + invariants
        assert abs(sum(analysis["categories"].values())
                   - analysis["makespan"]) < 1e-9         # 100% attributed
        shares = category_shares(analysis)
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert analysis["bottleneck"]["device"] in {
            d.device_id for d in small_cluster.devices()
        }

    def test_bounds_snippet_runs(self, small_cluster):
        analysis = self._analysis(small_cluster)
        bounds = analysis["bounds"]
        assert bounds["perfect_balance"] <= analysis["makespan"] + 1e-9
        for name in ("zero_transfer", "zero_scheduler"):
            assert bounds[name] <= analysis["makespan"] + 1e-9
        assert set(bounds["device_speedup"]) <= {
            d.device_id for d in small_cluster.devices()
        }


class TestTutorialService:
    """Section 13: the serving-loop snippets, verbatim in structure."""

    def test_service_snippet_runs(self):
        from repro.service import ArrivalSpec, ClusterService, ServiceConfig

        config = ServiceConfig(
            arrivals=ArrivalSpec(rate=4.0, duration=12.0, pattern="bursty"),
            queue_limit=8,
            shed_policy="drop-oldest",
            deadline_factor=20.0,
            retry_budget=2,
            seed=7,
        )
        card = ClusterService(config).run()
        assert card["invariant_errors"] == []
        jobs = card["jobs"]
        terminal = (jobs["completed"] + jobs["rejected"] + jobs["shed"]
                    + jobs["timeout"] + jobs["failed"])
        assert terminal == jobs["submitted"] > 0
        assert card["latency_s"]["p99"] is not None
        assert card["goodput"]["jobs_per_s"] > 0

    def test_scorecard_validates_and_is_deterministic(self):
        import json

        from repro.service import (
            ArrivalSpec,
            ClusterService,
            ServiceConfig,
            validate_scorecard,
        )

        def episode():
            config = ServiceConfig(
                arrivals=ArrivalSpec(rate=3.0, duration=8.0),
                seed=13,
            )
            return ClusterService(config).run()

        one, two = episode(), episode()
        assert validate_scorecard(one) == []
        assert (json.dumps(one, sort_keys=True)
                == json.dumps(two, sort_keys=True))

    def test_serve_slo_gate_matches_the_committed_spec(self):
        from repro.obs import evaluate_slo, load_slo_spec
        from repro.service import ArrivalSpec, ClusterService, ServiceConfig

        service = ClusterService(ServiceConfig(
            arrivals=ArrivalSpec(rate=2.0, duration=10.0), seed=0,
        ))
        service.run()
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        spec = load_slo_spec(repo / "benchmarks" / "serve.slo.json")
        report = evaluate_slo(spec, service.store, run_id="tutorial-serve")
        assert report["ok"], report
