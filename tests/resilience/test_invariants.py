"""Unit tests for the resilience invariant checkers."""

from repro.resilience.invariants import (
    Violation,
    check_busy_overlap,
    check_conservation,
    check_fault_isolation,
    check_makespan,
    check_run,
    recovery_lags,
)
from repro.sim.trace import ExecutionTrace, TaskRecord


def record(worker, start_unit, units, dispatch, duration=0.1):
    return TaskRecord(
        worker_id=worker,
        units=units,
        dispatch_time=dispatch,
        transfer_time=0.0,
        exec_time=duration,
        start_time=dispatch,
        end_time=dispatch + duration,
        start_unit=start_unit,
    )


def make_trace(records, *, failures=(), recoveries=(), lost=()):
    trace = ExecutionTrace(["d0", "d1"])
    for r in records:
        trace.add_record(r)
    for t, d in failures:
        trace.record_failure(t, d)
    for t, d in recoveries:
        trace.record_recovery(t, d)
    for t, d, u in lost:
        trace.record_lost_block(t, d, u)
    return trace


class TestConservation:
    def test_exact_tiling_passes(self):
        trace = make_trace(
            [record("d0", 0, 50, 0.0), record("d1", 50, 50, 0.0)]
        )
        assert check_conservation(trace, 100) == []

    def test_out_of_order_tiling_passes(self):
        trace = make_trace(
            [record("d1", 60, 40, 0.3), record("d0", 0, 60, 0.0)]
        )
        assert check_conservation(trace, 100) == []

    def test_gap_detected(self):
        trace = make_trace(
            [record("d0", 0, 40, 0.0), record("d1", 50, 50, 0.0)]
        )
        violations = check_conservation(trace, 100)
        assert violations and "never completed" in violations[0].message

    def test_overlap_detected(self):
        trace = make_trace(
            [record("d0", 0, 60, 0.0), record("d1", 50, 50, 0.0)]
        )
        violations = check_conservation(trace, 100)
        assert violations and "overlaps" in violations[0].message

    def test_short_domain_detected(self):
        trace = make_trace([record("d0", 0, 60, 0.0)])
        violations = check_conservation(trace, 100)
        assert violations and "ends at 100" in violations[0].message

    def test_empty_trace_is_violation(self):
        assert check_conservation(make_trace([]), 100)

    def test_legacy_records_fall_back_to_totals(self):
        legacy = [record("d0", -1, 60, 0.0), record("d1", -1, 40, 0.0)]
        assert check_conservation(make_trace(legacy), 100) == []
        assert check_conservation(make_trace(legacy), 120)


class TestFaultIsolation:
    def test_clean_run_passes(self):
        trace = make_trace(
            [record("d0", 0, 100, 0.0)],
            failures=[(0.5, "d1")],
            lost=[(0.5, "d1", 10)],
        )
        assert check_fault_isolation(trace) == []

    def test_dispatch_after_permanent_failure_flagged(self):
        trace = make_trace(
            [record("d1", 0, 10, 0.8)], failures=[(0.5, "d1")]
        )
        violations = check_fault_isolation(trace)
        assert violations and "after its failure" in violations[0].message

    def test_dispatch_inside_downtime_flagged(self):
        trace = make_trace(
            [record("d1", 0, 10, 0.6)],
            failures=[(0.5, "d1")],
            recoveries=[(0.7, "d1")],
        )
        violations = check_fault_isolation(trace)
        assert violations and "downtime" in violations[0].message

    def test_dispatch_after_recovery_allowed(self):
        trace = make_trace(
            [record("d1", 0, 10, 0.9)],
            failures=[(0.5, "d1")],
            recoveries=[(0.7, "d1")],
        )
        assert check_fault_isolation(trace) == []

    def test_unexplained_lost_block_flagged(self):
        trace = make_trace([record("d0", 0, 10, 0.0)], lost=[(0.4, "d1", 8)])
        violations = check_fault_isolation(trace)
        assert violations and "no down event" in violations[0].message


class TestBusyOverlap:
    def test_sequential_intervals_pass(self):
        trace = make_trace(
            [record("d0", 0, 50, 0.0), record("d0", 50, 50, 0.1)]
        )
        assert check_busy_overlap(trace) == []

    def test_touching_intervals_pass(self):
        # half-open intervals: [0, 0.1) then [0.1, 0.2) do not overlap
        trace = make_trace(
            [record("d0", 0, 50, 0.0, duration=0.1),
             record("d0", 50, 50, 0.1, duration=0.1)]
        )
        assert check_busy_overlap(trace) == []

    def test_overlapping_intervals_flagged(self):
        trace = make_trace(
            [record("d0", 0, 50, 0.0, duration=0.2),
             record("d0", 50, 50, 0.1, duration=0.2)]
        )
        violations = check_busy_overlap(trace)
        assert violations and violations[0].name == "busy-overlap"
        assert "d0" in violations[0].message

    def test_overlap_on_other_worker_does_not_hide(self):
        trace = make_trace(
            [record("d0", 0, 50, 0.0),
             record("d1", 50, 25, 0.0, duration=0.2),
             record("d1", 75, 25, 0.1, duration=0.2)]
        )
        violations = check_busy_overlap(trace)
        assert len(violations) == 1 and "d1" in violations[0].message

    def test_check_run_includes_busy_overlap(self):
        trace = make_trace(
            [record("d0", 0, 50, 0.0, duration=0.2),
             record("d0", 50, 50, 0.1, duration=0.2)]
        )
        names = {v.name for v in check_run(trace, 100, makespan=1.0, baseline=1.0)}
        assert "busy-overlap" in names


class TestMakespanSanity:
    def test_degraded_run_passes(self):
        assert check_makespan(1.4, 1.0) == []

    def test_small_speedup_is_a_scheduling_anomaly(self):
        assert check_makespan(0.9, 1.0) == []

    def test_implausible_speedup_flagged(self):
        violations = check_makespan(0.5, 1.0)
        assert violations and violations[0].name == "makespan"

    def test_tolerance_is_configurable(self):
        assert check_makespan(0.5, 1.0, anomaly_tolerance=0.6) == []


class TestRecoveryLags:
    def test_lag_is_first_dispatch_after_recovery(self):
        trace = make_trace(
            [record("d1", 0, 10, 0.2), record("d1", 10, 10, 0.85)],
            failures=[(0.5, "d1")],
            recoveries=[(0.7, "d1")],
        )
        lags = recovery_lags(trace)
        assert len(lags) == 1
        assert abs(lags[0] - 0.15) < 1e-12

    def test_never_redispatched_contributes_no_lag(self):
        trace = make_trace(
            [record("d0", 0, 10, 0.0)],
            failures=[(0.5, "d1")],
            recoveries=[(0.7, "d1")],
        )
        assert recovery_lags(trace) == []


class TestCheckRun:
    def test_concatenates_all_families(self):
        trace = make_trace(
            [record("d1", 0, 60, 0.8)], failures=[(0.5, "d1")]
        )
        violations = check_run(trace, 100, makespan=0.4, baseline=1.0)
        names = {v.name for v in violations}
        assert names == {"conservation", "fault-isolation", "makespan"}
        assert all(isinstance(v, Violation) for v in violations)
