"""Fault serialisation, schedule generation, and transfer-fault runtime."""

import numpy as np
import pytest

from repro import Greedy, Runtime
from repro.apps import MatMul
from repro.errors import ConfigurationError
from repro.resilience.faults import (
    fault_from_dict,
    fault_to_dict,
    generate_schedule,
    split_faults,
)
from repro.runtime.sim_executor import (
    DeviceFailure,
    Perturbation,
    TransferFault,
    TransientFailure,
)

ALL_KINDS = [
    DeviceFailure("d0", 1.0),
    Perturbation("d1", 0.5, 2.0),
    TransientFailure("d0", 0.2, 0.1),
    TransferFault("d1", 0.3, 0.05, max_retries=2, backoff_factor=0.5),
]


class TestSerialisation:
    @pytest.mark.parametrize("fault", ALL_KINDS, ids=lambda f: type(f).__name__)
    def test_roundtrip(self, fault):
        assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_transfer_defaults_fill_in(self):
        restored = fault_from_dict(
            {"type": "transfer", "device_id": "d0", "time": 0.1,
             "duration": 0.05}
        )
        assert restored == TransferFault("d0", 0.1, 0.05)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault type"):
            fault_from_dict({"type": "meteor", "device_id": "d0"})

    def test_unknown_object_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault object"):
            fault_to_dict(object())

    def test_split_faults_partitions(self):
        perturbations, failures, transients, transfers = split_faults(ALL_KINDS)
        assert perturbations == (ALL_KINDS[1],)
        assert failures == (ALL_KINDS[0],)
        assert transients == (ALL_KINDS[2],)
        assert transfers == (ALL_KINDS[3],)


class TestGenerateSchedule:
    DEVICES = ("a.cpu", "a.gpu0", "b.cpu", "b.gpu0")

    def test_deterministic_for_equal_seeds(self):
        one = generate_schedule(
            np.random.default_rng(7), self.DEVICES, 2.0, max_faults=3
        )
        two = generate_schedule(
            np.random.default_rng(7), self.DEVICES, 2.0, max_faults=3
        )
        assert one == two

    def test_respects_max_faults(self):
        for seed in range(20):
            schedule = generate_schedule(
                np.random.default_rng(seed), self.DEVICES, 1.0, max_faults=2
            )
            assert 1 <= len(schedule) <= 2

    def test_never_kills_every_device(self):
        for seed in range(50):
            schedule = generate_schedule(
                np.random.default_rng(seed), self.DEVICES, 1.0, max_faults=6
            )
            lethal = {
                f.device_id
                for f in schedule
                if isinstance(f, (DeviceFailure, TransferFault))
            }
            assert len(lethal) < len(self.DEVICES)

    def test_times_land_in_horizon_window(self):
        horizon = 4.0
        for seed in range(20):
            for fault in generate_schedule(
                np.random.default_rng(seed), self.DEVICES, horizon,
                max_faults=3,
            ):
                t = (
                    fault.start_time
                    if isinstance(fault, Perturbation)
                    else fault.time
                )
                assert 0.15 * horizon <= t <= 0.8 * horizon

    def test_single_device_cluster_gets_no_lethal_faults(self):
        for seed in range(20):
            schedule = generate_schedule(
                np.random.default_rng(seed), ("solo",), 1.0, max_faults=4
            )
            assert not any(
                isinstance(f, (DeviceFailure, TransferFault))
                for f in schedule
            )

    def test_bad_arguments_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError, match="at least one device"):
            generate_schedule(rng, (), 1.0)
        with pytest.raises(ConfigurationError, match="horizon"):
            generate_schedule(rng, self.DEVICES, 0.0)
        with pytest.raises(ConfigurationError, match="max_faults"):
            generate_schedule(rng, self.DEVICES, 1.0, max_faults=0)


class TestTransferFaultRuntime:
    def _baseline(self, small_cluster, app):
        return Runtime(small_cluster, app.codelet(), seed=5).run(
            Greedy(), app.total_units, app.default_initial_block_size()
        )

    def _victim(self, base):
        """A mid-run alpha.gpu0 dispatch of the fault-free execution."""
        candidates = [
            r
            for r in base.trace.records
            if r.worker_id == "alpha.gpu0"
            and r.dispatch_time > base.makespan * 0.3
            and r.transfer_time > 0.0
        ]
        assert candidates, "scenario must have a mid-run GPU transfer"
        return min(candidates, key=lambda r: r.dispatch_time)

    def test_retry_succeeds_and_is_charged(self, small_cluster):
        app = MatMul(n=8192)
        base = self._baseline(small_cluster, app)
        victim = self._victim(base)
        # a window the first backoff step escapes: one failed attempt
        fault = TransferFault(
            "alpha.gpu0",
            victim.dispatch_time - 1e-9,
            victim.transfer_time * 2.0,
        )
        res = Runtime(
            small_cluster, app.codelet(), seed=5, transfer_faults=(fault,)
        ).run(Greedy(), app.total_units, app.default_initial_block_size())
        retried = [r for r in res.trace.records if r.retries > 0]
        assert retried, "the in-window transfer must have retried"
        for r in retried:
            assert r.retry_time > 0.0
            # the stall is part of the busy interval
            assert (
                r.end_time - r.start_time
                >= r.retry_time + r.transfer_time + r.exec_time - 1e-9
            )
        assert res.trace.total_units() >= app.total_units
        assert not res.trace.failures

    def test_give_up_fails_the_device(self, small_cluster):
        app = MatMul(n=8192)
        base = self._baseline(small_cluster, app)
        victim = self._victim(base)
        # a window no retry budget escapes: give up, mark the device down
        fault = TransferFault(
            "alpha.gpu0",
            victim.dispatch_time - 1e-9,
            base.makespan * 10.0,
            max_retries=1,
        )
        res = Runtime(
            small_cluster, app.codelet(), seed=5, transfer_faults=(fault,)
        ).run(Greedy(), app.total_units, app.default_initial_block_size())
        assert "alpha.gpu0" in {d for _, d in res.trace.failures}
        assert any(d == "alpha.gpu0" for _, d, _, _ in res.trace.lost_blocks)
        assert res.trace.total_units() >= app.total_units

    def test_fault_free_runs_unaffected_by_code_path(self, small_cluster):
        """No-fault runs stay byte-identical to the plain executor."""
        app = MatMul(n=4096)
        plain = self._baseline(small_cluster, MatMul(n=4096))
        wired = Runtime(
            small_cluster, app.codelet(), seed=5, transfer_faults=()
        ).run(Greedy(), app.total_units, app.default_initial_block_size())
        assert plain.trace.to_dict() == wired.trace.to_dict()


class TestTransferJitter:
    """Seeded jitter on transfer-retry backoff (de-synchronised storms)."""

    def _run(self, small_cluster, app, fault):
        return Runtime(
            small_cluster, app.codelet(), seed=5, transfer_faults=(fault,)
        ).run(Greedy(), app.total_units, app.default_initial_block_size())

    def _window(self, small_cluster, app):
        base = Runtime(small_cluster, app.codelet(), seed=5).run(
            Greedy(), app.total_units, app.default_initial_block_size()
        )
        candidates = [
            r
            for r in base.trace.records
            if r.worker_id == "alpha.gpu0"
            and r.dispatch_time > base.makespan * 0.3
            and r.transfer_time > 0.0
        ]
        assert candidates, "scenario must have a mid-run GPU transfer"
        victim = min(candidates, key=lambda r: r.dispatch_time)
        return victim.dispatch_time - 1e-9, victim.transfer_time * 2.0

    def test_roundtrip_preserves_jitter(self):
        fault = TransferFault("d1", 0.3, 0.05, jitter=0.25)
        assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_legacy_dicts_default_to_zero_jitter(self):
        restored = fault_from_dict(
            {"type": "transfer", "device_id": "d0", "time": 0.1,
             "duration": 0.05}
        )
        assert restored.jitter == 0.0

    def test_jitter_validation(self):
        with pytest.raises(ConfigurationError):
            TransferFault("d0", 0.1, 0.05, jitter=-0.1)
        with pytest.raises(ConfigurationError):
            TransferFault("d0", 0.1, 0.05, jitter=1.0)

    def test_zero_jitter_is_deterministic(self, small_cluster):
        app = MatMul(n=8192)
        when, width = self._window(small_cluster, app)
        fault = TransferFault("alpha.gpu0", when, width, jitter=0.0)
        one = self._run(small_cluster, app, fault)
        two = self._run(small_cluster, app, fault)
        assert one.trace.to_dict() == two.trace.to_dict()
        assert any(r.retries > 0 for r in one.trace.records)

    def test_jitter_spreads_within_bounds(self, small_cluster):
        """Jittered stalls deviate from unjittered ones, but never by
        more than the jitter fraction of the stall itself (only the
        backoff term is jittered; the timeout term never is)."""
        app = MatMul(n=8192)
        when, width = self._window(small_cluster, app)
        plain = self._run(
            small_cluster, app,
            TransferFault("alpha.gpu0", when, width, jitter=0.0),
        )
        jit = 0.4
        shaken = self._run(
            small_cluster, app,
            TransferFault("alpha.gpu0", when, width, jitter=jit),
        )
        base_stall = sum(
            r.retry_time for r in plain.trace.records if r.retries > 0
        )
        shaken_stall = sum(
            r.retry_time for r in shaken.trace.records if r.retries > 0
        )
        assert base_stall > 0.0 and shaken_stall > 0.0
        assert shaken_stall != base_stall, "jitter never engaged"
        assert abs(shaken_stall - base_stall) <= jit * base_stall + 1e-12

    def test_jitter_is_seeded(self, small_cluster):
        app = MatMul(n=8192)
        when, width = self._window(small_cluster, app)
        fault = TransferFault("alpha.gpu0", when, width, jitter=0.4)
        one = self._run(small_cluster, app, fault)
        two = self._run(small_cluster, app, fault)
        assert one.trace.to_dict() == two.trace.to_dict()
