"""The chaos campaign runner: scorecard shape, determinism, validation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.resilience import ChaosConfig, run_campaign

#: Small but real: 4 runs over 2 policies at the 1024 scenario.  The
#: wide anomaly tolerance absorbs a known legitimate Graham anomaly
#: (losing the big GPU mid-probe can *help* this small run).
SMALL = ChaosConfig(
    apps=("matmul",),
    sizes=(1024,),
    policies=("plb-hec", "greedy"),
    runs=4,
    seed=0,
    anomaly_tolerance=0.5,
)


@pytest.fixture(scope="module")
def scorecard():
    return run_campaign(SMALL, jobs=2)


class TestScorecardShape:
    def test_all_runs_survive_and_invariants_hold(self, scorecard):
        assert scorecard["total_runs"] == 4
        assert scorecard["survived_runs"] == 4
        assert scorecard["total_violations"] == 0
        assert scorecard["all_invariants_ok"] is True

    def test_every_run_has_a_fault_schedule(self, scorecard):
        for run in scorecard["runs"]:
            assert run["faults"], "chaos runs must actually inject faults"
            for fault in run["faults"]:
                assert fault["type"] in (
                    "failure", "transient", "perturbation", "transfer",
                )

    def test_runs_carry_degradation_vs_baseline(self, scorecard):
        for run in scorecard["runs"]:
            assert run["baseline_makespan"] > 0
            assert run["degradation"] == pytest.approx(
                run["makespan"] / run["baseline_makespan"]
            )

    def test_policies_aggregate_their_runs(self, scorecard):
        per_policy = scorecard["policies"]
        assert set(per_policy) == {"plb-hec", "greedy"}
        for agg in per_policy.values():
            assert agg["runs"] == 2
            assert agg["survived"] == 2
            assert agg["survival_rate"] == 1.0
            assert agg["mean_degradation"] is not None

    def test_round_robin_policy_assignment(self, scorecard):
        assert [r["policy"] for r in scorecard["runs"]] == [
            "plb-hec", "greedy", "plb-hec", "greedy",
        ]

    def test_scorecard_is_json_serialisable(self, scorecard):
        assert json.loads(json.dumps(scorecard)) == json.loads(
            json.dumps(scorecard)
        )


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, scorecard):
        again = run_campaign(SMALL, jobs=2)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            scorecard, sort_keys=True
        )

    def test_different_seed_differs(self, scorecard):
        other = run_campaign(
            ChaosConfig(
                apps=SMALL.apps,
                sizes=SMALL.sizes,
                policies=SMALL.policies,
                runs=SMALL.runs,
                seed=1,
                anomaly_tolerance=SMALL.anomaly_tolerance,
            ),
            jobs=2,
        )
        assert [r["faults"] for r in other["runs"]] != [
            r["faults"] for r in scorecard["runs"]
        ]


class TestConfigValidation:
    def test_apps_sizes_must_pair(self):
        with pytest.raises(ConfigurationError, match="pair up"):
            ChaosConfig(apps=("matmul", "grn"), sizes=(1024,))

    def test_runs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="runs"):
            ChaosConfig(runs=0)

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError, match="policies"):
            ChaosConfig(policies=())

    def test_config_roundtrips_to_dict(self):
        d = SMALL.to_dict()
        assert d["seed"] == 0 and d["policies"] == ["plb-hec", "greedy"]


class TestDecisionColumns:
    """Schema v4 scorecards surface the decision ledger per run/policy."""

    def test_runs_carry_decision_counts(self, scorecard):
        for run in scorecard["runs"]:
            assert "decisions" in run
            assert "fallback_stages" in run
            if run["policy"] == "plb-hec" and run["survived"]:
                assert run["decisions"] > 0
            if run["policy"] == "greedy":
                # greedy keeps no ledger: zero decisions, no stages
                assert run["decisions"] == 0
                assert run["fallback_stages"] == {}

    def test_policies_aggregate_decisions_explained(self, scorecard):
        per_policy = scorecard["policies"]
        for policy, agg in per_policy.items():
            assert agg["decisions_explained"] == sum(
                r["decisions"]
                for r in scorecard["runs"]
                if r["policy"] == policy
            )
            assert isinstance(agg["fallback_stages_used"], dict)
        assert per_policy["plb-hec"]["decisions_explained"] > 0
        assert per_policy["greedy"]["decisions_explained"] == 0

    def test_fallback_stage_counts_are_ints(self, scorecard):
        for run in scorecard["runs"]:
            for stage, count in run["fallback_stages"].items():
                assert isinstance(stage, str)
                assert isinstance(count, int) and count >= 1


class TestAttributionColumns:
    """Chaos runs carry the critical-path attribution, satellite of the
    makespan-attribution work: degradation decomposes into categories."""

    def test_runs_carry_attribution_shares(self, scorecard):
        from repro.obs.critpath import CATEGORIES

        for run in scorecard["runs"]:
            if not run["survived"]:
                continue
            attribution = run["attribution"]
            assert set(attribution) <= set(CATEGORIES)
            assert attribution, "survived runs must be attributed"
            for share in attribution.values():
                assert 0.0 <= share <= 1.0
            assert abs(sum(attribution.values()) - 1.0) < 1e-9

    def test_policies_aggregate_mean_attribution(self, scorecard):
        for agg in scorecard["policies"].values():
            if not agg["survived"]:
                continue
            mean_attribution = agg["mean_attribution"]
            assert mean_attribution
            for share in mean_attribution.values():
                assert 0.0 <= share <= 1.0
            assert abs(sum(mean_attribution.values()) - 1.0) < 1e-6

    def test_attribution_survives_json(self, scorecard):
        rebuilt = json.loads(json.dumps(scorecard))
        first = rebuilt["runs"][0]["attribution"]
        assert first == scorecard["runs"][0]["attribution"]
