"""Tests for repro.apps.blackscholes."""

import numpy as np
import pytest

from repro.apps import BlackScholes
from repro.errors import ConfigurationError, WorkloadError


class TestConfig:
    def test_total_units(self):
        assert BlackScholes(1000).total_units == 1000

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            BlackScholes(0)
        with pytest.raises(ConfigurationError):
            BlackScholes(10, lattice_steps=1)

    def test_kernel_work_quadratic_in_steps(self):
        k1 = BlackScholes(10, lattice_steps=100).kernel_characteristics()
        k2 = BlackScholes(10, lattice_steps=200).kernel_characteristics()
        assert k2.flops_per_unit / k1.flops_per_unit == pytest.approx(4.0, rel=0.02)

    def test_cores_scaling(self):
        k = BlackScholes(10).kernel_characteristics()
        assert k.gpu_half_scaling == "cores"


class TestPricing:
    def test_lattice_converges_to_closed_form(self):
        app = BlackScholes(100, lattice_steps=512, seed=2)
        lattice = app.cpu_kernel(0, 100)
        exact = app.closed_form(0, 100)
        assert np.max(np.abs(lattice - exact)) < 0.3

    def test_convergence_improves_with_steps(self):
        coarse = BlackScholes(50, lattice_steps=64, seed=2)
        fine = BlackScholes(50, lattice_steps=512, seed=2)
        err_coarse = np.abs(coarse.cpu_kernel(0, 50) - coarse.closed_form(0, 50))
        err_fine = np.abs(fine.cpu_kernel(0, 50) - fine.closed_form(0, 50))
        assert err_fine.mean() < err_coarse.mean()

    def test_prices_nonnegative(self):
        app = BlackScholes(200, lattice_steps=64)
        assert np.all(app.cpu_kernel(0, 200) >= 0.0)

    def test_call_price_below_spot(self):
        app = BlackScholes(200, lattice_steps=64)
        app._ensure_params()
        prices = app.cpu_kernel(0, 200)
        assert np.all(prices <= app._params["spot"] + 1e-9)

    def test_deep_itm_close_to_intrinsic_bound(self):
        app = BlackScholes(100, lattice_steps=128)
        app._ensure_params()
        prices = app.cpu_kernel(0, 100)
        intrinsic = np.maximum(
            app._params["spot"]
            - app._params["strike"]
            * np.exp(-app._params["rate"] * app._params["maturity"]),
            0.0,
        )
        assert np.all(prices >= intrinsic - 1e-6)

    def test_block_independent_of_split(self):
        app = BlackScholes(60, lattice_steps=64)
        whole = app.cpu_kernel(0, 60)
        split = np.concatenate([app.cpu_kernel(0, 30), app.cpu_kernel(30, 30)])
        assert np.allclose(whole, split)

    def test_out_of_range(self):
        with pytest.raises(WorkloadError):
            BlackScholes(10, lattice_steps=16).cpu_kernel(8, 5)


class TestVerify:
    def test_accepts_lattice_prices(self):
        app = BlackScholes(80, lattice_steps=256)
        results = [(0, 40, app.cpu_kernel(0, 40)), (40, 40, app.cpu_kernel(40, 40))]
        assert app.verify(results)

    def test_rejects_garbage(self):
        app = BlackScholes(80, lattice_steps=256)
        assert not app.verify([(0, 80, np.zeros(80))])

    def test_rejects_incomplete(self):
        app = BlackScholes(80, lattice_steps=256)
        assert not app.verify([(0, 40, app.cpu_kernel(0, 40))])

    def test_rejects_wrong_shape(self):
        app = BlackScholes(80, lattice_steps=256)
        assert not app.verify([(0, 80, np.zeros((80, 2)))])
