"""Tests for repro.apps.matmul."""

import numpy as np
import pytest

from repro.apps import MatMul
from repro.errors import ConfigurationError, WorkloadError


class TestMatMulConfig:
    def test_total_units_is_order(self):
        assert MatMul(n=256).total_units == 256

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            MatMul(n=0)

    def test_kernel_characteristics(self):
        k = MatMul(n=1024).kernel_characteristics()
        assert k.flops_per_unit == pytest.approx(2.0 * 1024**2)
        assert k.bytes_in_per_unit == pytest.approx(4.0 * 1024)
        assert k.gpu_half_scaling == "threads"

    def test_initial_block_heuristic(self):
        assert MatMul(n=65536).default_initial_block_size() == 32
        assert MatMul(n=1024).default_initial_block_size() == 32  # floored

    def test_codelet_has_real_impl(self):
        c = MatMul(n=64).codelet()
        assert not c.simulation_only
        assert c.name == "matmul"


class TestMatMulKernels:
    def test_block_matches_full_product(self):
        app = MatMul(n=64, seed=1)
        block = app.cpu_kernel(8, 16)
        app._ensure_data()
        expected = (app._a @ app._b)[8:24]
        assert np.allclose(block, expected, rtol=1e-4, atol=1e-3)

    def test_gpu_kernel_same_as_cpu(self):
        app = MatMul(n=32)
        assert np.allclose(app.gpu_kernel(0, 4), app.cpu_kernel(0, 4))

    def test_out_of_range_rejected(self):
        app = MatMul(n=32)
        with pytest.raises(WorkloadError):
            app.cpu_kernel(30, 5)

    def test_materialize_limit_enforced(self):
        app = MatMul(n=8192, materialize_limit=4096)
        with pytest.raises(WorkloadError, match="simulation-only"):
            app.cpu_kernel(0, 1)

    def test_deterministic_data(self):
        a = MatMul(n=32, seed=3).cpu_kernel(0, 32)
        b = MatMul(n=32, seed=3).cpu_kernel(0, 32)
        assert np.array_equal(a, b)


class TestMatMulVerify:
    def test_accepts_correct_blocks(self):
        app = MatMul(n=48)
        results = [
            (0, 16, app.cpu_kernel(0, 16)),
            (16, 32, app.cpu_kernel(16, 32)),
        ]
        assert app.verify(results)

    def test_rejects_gap(self):
        app = MatMul(n=48)
        results = [(0, 16, app.cpu_kernel(0, 16))]
        assert not app.verify(results)

    def test_rejects_overlap(self):
        app = MatMul(n=48)
        results = [
            (0, 32, app.cpu_kernel(0, 32)),
            (16, 32, app.cpu_kernel(16, 32)),
        ]
        assert not app.verify(results)

    def test_rejects_wrong_values(self):
        app = MatMul(n=48)
        wrong = np.zeros((48, 48), dtype=np.float32)
        assert not app.verify([(0, 48, wrong)])

    def test_rejects_wrong_shape(self):
        app = MatMul(n=48)
        assert not app.verify([(0, 48, np.zeros((48, 3)))])


class TestCoverageHelper:
    def test_exact_tiling(self):
        assert MatMul.coverage_ok([(0, 5, None), (5, 5, None)], 10)

    def test_out_of_order_ok(self):
        assert MatMul.coverage_ok([(5, 5, None), (0, 5, None)], 10)

    def test_short_fails(self):
        assert not MatMul.coverage_ok([(0, 5, None)], 10)

    def test_overlap_fails(self):
        assert not MatMul.coverage_ok([(0, 6, None), (5, 5, None)], 10)
