"""Tests for repro.apps.stencil."""

import numpy as np
import pytest

from repro.apps import Stencil2D
from repro.errors import ConfigurationError, WorkloadError


class TestConfig:
    def test_total_units(self):
        assert Stencil2D(100).total_units == 100

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            Stencil2D(0)
        with pytest.raises(ConfigurationError):
            Stencil2D(10, tile=2)
        with pytest.raises(ConfigurationError):
            Stencil2D(10, sweeps=0)

    def test_memory_bound_characterisation(self):
        k = Stencil2D(10, tile=64, sweeps=100).kernel_characteristics()
        # a memory-bound kernel sustains a small fraction of peak
        assert k.gpu_efficiency < 0.3
        assert k.flops_per_unit == pytest.approx(5.0 * 64 * 64 * 100)


class TestKernel:
    @pytest.fixture
    def app(self):
        return Stencil2D(20, tile=16, sweeps=10, seed=3)

    def test_output_shape(self, app):
        out = app.cpu_kernel(0, 5)
        assert out.shape == (5, 16, 16)

    def test_boundaries_fixed(self, app):
        initial = app._initial_tiles(0, 1)[0]
        final = app.cpu_kernel(0, 1)[0]
        assert np.array_equal(final[0, :], initial[0, :])
        assert np.array_equal(final[-1, :], initial[-1, :])
        assert np.array_equal(final[:, 0], initial[:, 0])
        assert np.array_equal(final[:, -1], initial[:, -1])

    def test_interior_smoothed(self, app):
        initial = app._initial_tiles(0, 1)[0]
        final = app.cpu_kernel(0, 1)[0]
        # relaxation reduces interior variance
        assert final[1:-1, 1:-1].var() < initial[1:-1, 1:-1].var()

    def test_maximum_principle(self, app):
        """Jacobi iterates stay within the initial value range."""
        initial = app._initial_tiles(0, 3)
        final = app.cpu_kernel(0, 3)
        assert final.max() <= initial.max() + 1e-12
        assert final.min() >= initial.min() - 1e-12

    def test_matches_independent_implementation(self, app):
        fast = app.cpu_kernel(4, 1)[0]
        reference = app._reference_tile(4)
        assert np.allclose(fast, reference, atol=1e-12)

    def test_block_split_invariant(self, app):
        whole = app.cpu_kernel(0, 10)
        split = np.concatenate([app.cpu_kernel(0, 4), app.cpu_kernel(4, 6)])
        assert np.array_equal(whole, split)

    def test_deterministic_per_tile(self):
        a = Stencil2D(10, tile=16, sweeps=5, seed=1).cpu_kernel(3, 1)
        b = Stencil2D(10, tile=16, sweeps=5, seed=1).cpu_kernel(3, 1)
        assert np.array_equal(a, b)

    def test_out_of_range(self, app):
        with pytest.raises(WorkloadError):
            app.cpu_kernel(18, 5)


class TestVerify:
    def test_accepts_correct(self):
        app = Stencil2D(12, tile=16, sweeps=5)
        results = [(0, 6, app.cpu_kernel(0, 6)), (6, 6, app.cpu_kernel(6, 6))]
        assert app.verify(results)

    def test_rejects_wrong_values(self):
        app = Stencil2D(12, tile=16, sweeps=5)
        bad = app.cpu_kernel(0, 12) + 1.0
        assert not app.verify([(0, 12, bad)])

    def test_rejects_incomplete(self):
        app = Stencil2D(12, tile=16, sweeps=5)
        assert not app.verify([(0, 6, app.cpu_kernel(0, 6))])


class TestEndToEnd:
    def test_sim_run(self, small_cluster):
        from repro import PLBHeC, Runtime

        app = Stencil2D(4096, sweeps=2000)
        res = Runtime(small_cluster, app.codelet(), seed=0).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        assert res.trace.total_units() == 4096

    def test_real_run_verified(self, small_cluster):
        from repro import Greedy, Runtime

        app = Stencil2D(200, tile=16, sweeps=10)
        res = Runtime(small_cluster, app.codelet(), backend="real").run(
            Greedy(num_pieces=16), app.total_units, 8
        )
        assert app.verify(res.results)
