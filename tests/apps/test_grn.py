"""Tests for repro.apps.grn."""

import numpy as np
import pytest

from repro.apps import GRNInference
from repro.errors import ConfigurationError, WorkloadError


class TestConfig:
    def test_total_units(self):
        assert GRNInference(100).total_units == 100

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            GRNInference(0)
        with pytest.raises(ConfigurationError):
            GRNInference(10, candidate_pool=1)
        with pytest.raises(ConfigurationError):
            GRNInference(10, samples=2)

    def test_kernel_work_scales_with_pool(self):
        k1 = GRNInference(10, candidate_pool=16).kernel_characteristics()
        k2 = GRNInference(10, candidate_pool=32).kernel_characteristics()
        # pairs grow quadratically with pool size
        assert k2.flops_per_unit / k1.flops_per_unit == pytest.approx(
            (32 * 31) / (16 * 15), rel=0.01
        )

    def test_real_limit_enforced(self):
        app = GRNInference(100_000, candidate_pool=4096)
        with pytest.raises(WorkloadError, match="simulation-only"):
            app.cpu_kernel(0, 1)


class TestKernel:
    @pytest.fixture
    def app(self):
        return GRNInference(50, candidate_pool=10, samples=24, seed=4)

    def test_output_shape(self, app):
        out = app.cpu_kernel(0, 5)
        assert out.shape == (5, 2)

    def test_scores_nonnegative_and_bounded(self, app):
        out = app.cpu_kernel(0, 20)
        assert np.all(out[:, 1] >= 0)
        assert np.all(out[:, 1] <= app.samples)

    def test_pair_index_in_range(self, app):
        out = app.cpu_kernel(0, 20)
        n_pairs = 10 * 9 // 2
        assert np.all(out[:, 0] >= 0)
        assert np.all(out[:, 0] < n_pairs)

    def test_matches_brute_force(self, app):
        out = app.cpu_kernel(0, 8)
        for i in range(8):
            _, ref_score = app.brute_force_best(i)
            assert out[i, 1] == ref_score

    def test_block_split_invariant(self, app):
        whole = app.cpu_kernel(0, 10)
        split = np.vstack([app.cpu_kernel(0, 5), app.cpu_kernel(5, 5)])
        assert np.array_equal(whole, split)

    def test_out_of_range(self, app):
        with pytest.raises(WorkloadError):
            app.cpu_kernel(48, 5)

    def test_deterministic(self):
        a = GRNInference(20, candidate_pool=8, samples=16, seed=7).cpu_kernel(0, 20)
        b = GRNInference(20, candidate_pool=8, samples=16, seed=7).cpu_kernel(0, 20)
        assert np.array_equal(a, b)


class TestVerify:
    def test_accepts_correct(self):
        app = GRNInference(30, candidate_pool=8, samples=16)
        results = [(0, 15, app.cpu_kernel(0, 15)), (15, 15, app.cpu_kernel(15, 15))]
        assert app.verify(results)

    def test_rejects_wrong_scores(self):
        app = GRNInference(30, candidate_pool=8, samples=16)
        bad = app.cpu_kernel(0, 30).copy()
        bad[:, 1] += 1
        assert not app.verify([(0, 30, bad)])

    def test_rejects_incomplete(self):
        app = GRNInference(30, candidate_pool=8, samples=16)
        assert not app.verify([(0, 15, app.cpu_kernel(0, 15))])
