"""Tests for repro.util.gantt."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.trace import ExecutionTrace, TaskRecord
from repro.util.gantt import render_gantt


def record(worker, start, end, phase="exec"):
    return TaskRecord(
        worker_id=worker, units=1, dispatch_time=start, transfer_time=0.0,
        exec_time=end - start, start_time=start, end_time=end, phase=phase,
    )


@pytest.fixture
def trace():
    tr = ExecutionTrace(["a", "b"])
    tr.add_record(record("a", 0.0, 5.0, phase="probe"))
    tr.add_record(record("a", 5.0, 10.0))
    tr.add_record(record("b", 0.0, 2.0))
    tr.finalize(10.0)
    return tr


class TestRenderGantt:
    def test_row_per_worker_plus_footer(self, trace):
        lines = render_gantt(trace, width=40).splitlines()
        assert lines[0].startswith("a")
        assert lines[1].startswith("b")
        assert "0" in lines[-2]  # axis
        assert "probe" in lines[-1]  # legend

    def test_busy_and_idle_glyphs(self, trace):
        lines = render_gantt(trace, width=40).splitlines()
        row_a = lines[0].split("|")[1]
        row_b = lines[1].split("|")[1]
        assert ":" in row_a and "#" in row_a
        # b idles for 80% of the run
        assert row_b.count(" ") > row_b.count("#")

    def test_fully_busy_worker_has_no_gaps(self, trace):
        lines = render_gantt(trace, width=40).splitlines()
        row_a = lines[0].split("|")[1]
        assert " " not in row_a

    def test_width_respected(self, trace):
        lines = render_gantt(trace, width=30).splitlines()
        assert len(lines[0].split("|")[1]) == 30

    def test_invalid_width(self, trace):
        with pytest.raises(ConfigurationError):
            render_gantt(trace, width=5)

    def test_empty_trace(self):
        tr = ExecutionTrace(["a"])
        assert render_gantt(tr) == "(empty trace)"

    def test_rebalance_marker(self, trace):
        trace.record_rebalance(5.0)
        out = render_gantt(trace, width=40)
        assert "R" in out

    def test_failure_marker_on_device_row(self, trace):
        trace.record_failure(2.0, "b")
        lines = render_gantt(trace, width=40).splitlines()
        assert "X" in lines[1]
        assert "X" not in lines[0]

    def test_markers_can_be_disabled(self, trace):
        trace.record_rebalance(5.0)
        out = render_gantt(trace, width=40, show_markers=False)
        assert "R" not in out.replace("probe", "").replace("rebalance", "")

    def test_makespan_in_axis(self, trace):
        assert "10" in render_gantt(trace, width=40).splitlines()[-2]


class TestGanttIntegration:
    def test_real_run_renders(self, small_cluster):
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul

        app = MatMul(n=2048)
        res = Runtime(small_cluster, app.codelet(), seed=1).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        out = render_gantt(res.trace, width=60)
        assert ":" in out  # probe phase visible
        assert "#" in out  # exec phase visible
        assert len(out.splitlines()) == len(small_cluster.devices()) + 2


class TestRenderGanttSvg:
    def test_svg_fragment_with_worker_rows(self, trace):
        from repro.util.gantt import render_gantt_svg

        svg = render_gantt_svg(trace)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert ">a</text>" in svg and ">b</text>" in svg

    def test_phase_colors_and_tooltips(self, trace):
        from repro.util.gantt import SVG_PHASE_COLORS, render_gantt_svg

        svg = render_gantt_svg(trace)
        assert SVG_PHASE_COLORS["probe"] in svg
        assert SVG_PHASE_COLORS["exec"] in svg
        assert "<title>a probe:" in svg

    def test_phase_color_override(self, trace):
        from repro.util.gantt import render_gantt_svg

        svg = render_gantt_svg(
            trace, phase_colors={"exec": "var(--series-1)"}
        )
        assert "var(--series-1)" in svg

    def test_rebalance_rule_and_failure_marker(self, trace):
        from repro.util.gantt import render_gantt_svg

        trace.record_rebalance(5.0)
        trace.record_failure(2.0, "b")
        svg = render_gantt_svg(trace)
        assert "rebalance at 5.0000s" in svg
        assert "failure on b" in svg
        assert "stroke-dasharray" in svg

    def test_markers_can_be_disabled(self, trace):
        from repro.util.gantt import render_gantt_svg

        trace.record_rebalance(5.0)
        svg = render_gantt_svg(trace, show_markers=False)
        assert "rebalance" not in svg

    def test_empty_trace_placeholder(self):
        from repro.util.gantt import render_gantt_svg

        assert "empty trace" in render_gantt_svg(ExecutionTrace(["a"]))

    def test_invalid_width(self, trace):
        from repro.util.gantt import render_gantt_svg

        with pytest.raises(ConfigurationError):
            render_gantt_svg(trace, width=50)

    def test_axis_ticks_cover_makespan(self, trace):
        from repro.util.gantt import render_gantt_svg

        svg = render_gantt_svg(trace)
        assert ">0s</text>" in svg
        assert ">10s</text>" in svg

    def test_worker_ids_are_escaped(self):
        from repro.util.gantt import render_gantt_svg

        tr = ExecutionTrace(["a<b>"])
        tr.add_record(record("a<b>", 0.0, 1.0))
        tr.finalize(1.0)
        svg = render_gantt_svg(tr)
        assert "a&lt;b&gt;" in svg
        assert "<b>" not in svg
