"""Tests for repro.util.timing."""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.util.timing import Stopwatch, perf_report


class TestStopwatch:
    def test_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert 0.0 < sw.elapsed < 5.0

    def test_stop_without_start_raises(self):
        with pytest.raises(ConfigurationError):
            Stopwatch().stop()

    def test_elapsed_live_while_running(self):
        sw = Stopwatch().start()
        first = sw.elapsed
        assert sw.elapsed >= first
        sw.stop()

    def test_laps(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            time.sleep(0.005)
        assert set(sw.laps) == {"a", "b"}
        assert sw.laps["b"] > 0.0


class TestPerfReport:
    def test_report_shape(self):
        report = perf_report({"serial": 1.5}, meta={"jobs": 4})
        assert report["schema"] == 1
        assert report["timings_s"] == {"serial": 1.5}
        assert report["meta"] == {"jobs": 4}
        assert report["host"]["cpu_count"] >= 1

    def test_written_json_round_trips(self, tmp_path):
        path = tmp_path / "bench.json"
        report = perf_report({"x": 0.25}, path=path)
        assert json.loads(path.read_text()) == report
        assert not list(tmp_path.glob("*.tmp"))

    def test_bad_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            perf_report({"x": float("nan")})
        with pytest.raises(ConfigurationError):
            perf_report({"x": -1.0})
