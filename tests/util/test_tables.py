"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_title(self):
        out = format_table(["a"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456]], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_nan_renders_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_large_float_uses_exponent(self):
        out = format_table(["x"], [[1.5e9]])
        assert "e+" in out

    def test_tiny_float_uses_exponent(self):
        out = format_table(["x"], [[1.5e-9]])
        assert "e-" in out

    def test_zero_renders_plain(self):
        out = format_table(["x"], [[0.0]])
        assert "0.000" in out

    def test_bool_cells(self):
        out = format_table(["x"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        out = format_table(["col"], [[1], [1000]])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestFormatSeries:
    def test_basic(self):
        out = format_series("x", [1, 2], {"y": [0.1, 0.2]})
        assert "x" in out and "y" in out
        assert "0.100" in out

    def test_multiple_series(self):
        out = format_series("n", [1], {"a": [1.0], "b": [2.0]})
        header = out.splitlines()[0]
        assert "a" in header and "b" in header

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="series 'y'"):
            format_series("x", [1, 2], {"y": [0.1]})
