"""Tests for repro.util.logging."""

import logging

from repro.util.logging import get_logger


def test_logger_namespaced_under_repro():
    log = get_logger("sim.engine")
    assert log.name == "repro.sim.engine"


def test_full_name_not_doubled():
    log = get_logger("repro.solver.ipm")
    assert log.name == "repro.solver.ipm"


def test_root_has_null_handler():
    get_logger("anything")
    root = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_same_name_same_logger():
    assert get_logger("a.b") is get_logger("repro.a.b")
