"""Tests for repro.util.logging."""

import io
import json
import logging

import pytest

import repro.util.logging as logmod
from repro.errors import ConfigurationError
from repro.util.logging import (
    JsonFormatter,
    configure_from_env,
    configure_logging,
    get_logger,
)


@pytest.fixture
def clean_handler():
    """Detach any console handler configured during the test."""
    yield
    root = logging.getLogger("repro")
    if logmod._configured_handler is not None:
        root.removeHandler(logmod._configured_handler)
        logmod._configured_handler = None
    root.setLevel(logging.NOTSET)


def test_logger_namespaced_under_repro():
    log = get_logger("sim.engine")
    assert log.name == "repro.sim.engine"


def test_full_name_not_doubled():
    log = get_logger("repro.solver.ipm")
    assert log.name == "repro.solver.ipm"


def test_root_has_null_handler():
    get_logger("anything")
    root = logging.getLogger("repro")
    assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


def test_same_name_same_logger():
    assert get_logger("a.b") is get_logger("repro.a.b")


class TestConfigureLogging:
    def test_text_format_records(self, clean_handler):
        stream = io.StringIO()
        configure_logging("info", "text", stream=stream)
        get_logger("test.text").info("hello %s", "world")
        assert "hello world" in stream.getvalue()
        assert "repro.test.text" in stream.getvalue()

    def test_json_format_records(self, clean_handler):
        stream = io.StringIO()
        configure_logging("info", "json", stream=stream)
        get_logger("test.json").info("structured")
        doc = json.loads(stream.getvalue())
        assert doc["msg"] == "structured"
        assert doc["level"] == "info"
        assert doc["logger"] == "repro.test.json"

    def test_level_filters(self, clean_handler):
        stream = io.StringIO()
        configure_logging("warning", "text", stream=stream)
        get_logger("test.lvl").info("dropped")
        get_logger("test.lvl").warning("kept")
        assert "dropped" not in stream.getvalue()
        assert "kept" in stream.getvalue()

    def test_reconfigure_replaces_handler(self, clean_handler):
        first, second = io.StringIO(), io.StringIO()
        configure_logging("info", "text", stream=first)
        configure_logging("info", "text", stream=second)
        get_logger("test.re").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigurationError):
            configure_logging("loud")

    def test_bad_format_rejected(self):
        with pytest.raises(ConfigurationError):
            configure_logging("info", "xml")


class TestConfigureFromEnv:
    def test_nothing_requested_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG", raising=False)
        assert configure_from_env() is None

    @pytest.mark.parametrize(
        "env,expected_level,expected_json",
        [
            ("debug", logging.DEBUG, False),
            ("json", logging.INFO, True),
            ("warning:json", logging.WARNING, True),
            ("json:warning", logging.WARNING, True),  # order-insensitive
        ],
    )
    def test_env_forms(self, monkeypatch, clean_handler,
                       env, expected_level, expected_json):
        monkeypatch.setenv("REPRO_LOG", env)
        handler = configure_from_env()
        assert logging.getLogger("repro").level == expected_level
        assert isinstance(handler.formatter, JsonFormatter) == expected_json

    def test_explicit_args_win_over_env(self, monkeypatch, clean_handler):
        monkeypatch.setenv("REPRO_LOG", "debug:text")
        handler = configure_from_env(level="error", fmt="json")
        assert logging.getLogger("repro").level == logging.ERROR
        assert isinstance(handler.formatter, JsonFormatter)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "verbose")
        with pytest.raises(ConfigurationError, match="REPRO_LOG"):
            configure_from_env()


class TestJsonFormatter:
    def make_record(self, **extra):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "msg %d", (7,), None
        )
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_base_fields(self):
        doc = json.loads(JsonFormatter().format(self.make_record()))
        assert doc["msg"] == "msg 7"
        assert doc["level"] == "info"

    def test_event_payload_merged_without_clobbering(self):
        record = self.make_record(
            repro_event={"name": "ev", "msg": "evil-clobber"}
        )
        doc = json.loads(JsonFormatter().format(record))
        assert doc["name"] == "ev"
        assert doc["msg"] == "msg 7"  # base field wins

    def test_exception_included(self):
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = logging.LogRecord(
                "repro.x", logging.ERROR, __file__, 1, "failed", (),
                sys.exc_info(),
            )
        doc = json.loads(JsonFormatter().format(record))
        assert "ValueError: boom" in doc["exc"]
