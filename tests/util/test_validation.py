"""Tests for repro.util.validation."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_accepts_small_positive(self):
        assert check_positive("x", 1e-300) == 1e-300

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError, match="number"):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", "3")  # type: ignore[arg-type]

    def test_accepts_numpy_scalar(self):
        assert check_positive("x", np.float64(2.0)) == 2.0

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="bandwidth"):
            check_positive("bandwidth", -1)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 0)

    def test_minimum_parameter(self):
        assert check_positive_int("n", 0, minimum=0) == 0
        with pytest.raises(ConfigurationError):
            check_positive_int("n", 1, minimum=2)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError, match="integer"):
            check_positive_int("n", 3.0)  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", True)

    def test_accepts_numpy_int(self):
        assert check_positive_int("n", np.int64(5)) == 5


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("f", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("f", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_in_range("f", 0.0, 0.0, 1.0, inclusive=False)
        assert check_in_range("f", 0.5, 0.0, 1.0, inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_in_range("f", 1.5, 0.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            check_in_range("f", float("nan"), 0.0, 1.0)


class TestCheckFinite:
    def test_scalar(self):
        assert check_finite("x", 3.0) == 3.0

    def test_array(self):
        arr = [1.0, 2.0]
        assert check_finite("x", arr) is arr

    def test_nan_in_array(self):
        with pytest.raises(ConfigurationError):
            check_finite("x", [1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(ConfigurationError):
            check_finite("x", np.array([1.0, np.inf]))


class TestCheckProbabilityVector:
    def test_valid_vector(self):
        out = check_probability_vector("p", [0.25, 0.75])
        assert out.sum() == pytest.approx(1.0)

    def test_renormalises_exactly(self):
        out = check_probability_vector("p", [0.3, 0.7 - 1e-9], atol=1e-6)
        assert out.sum() == pytest.approx(1.0, abs=1e-15)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            check_probability_vector("p", [-0.1, 1.1])

    def test_rejects_wrong_sum(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            check_probability_vector("p", [0.5, 0.6])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [])

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [[0.5], [0.5]])  # type: ignore[list-item]

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [float("nan"), 1.0])
