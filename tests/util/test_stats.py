"""Tests for repro.util.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import RunningStats, mean_std, relative_error, summarize


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_matches_numpy(self):
        values = [1.0, 2.5, -3.0, 7.25, 0.125]
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.std == pytest.approx(np.std(values, ddof=1))
        assert s.minimum == min(values)
        assert s.maximum == max(values)

    def test_merge_equals_combined_stream(self):
        a_vals = [1.0, 2.0, 3.0]
        b_vals = [10.0, -1.0]
        a, b = RunningStats(), RunningStats()
        a.extend(a_vals)
        b.extend(b_vals)
        merged = a.merge(b)
        direct = RunningStats()
        direct.extend(a_vals + b_vals)
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)
        merged2 = RunningStats().merge(a)
        assert merged2.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_welford_stability_property(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-8, abs=1e-6
        )


class TestMeanStd:
    def test_empty_is_nan(self):
        m, s = mean_std([])
        assert math.isnan(m) and math.isnan(s)

    def test_single_value(self):
        assert mean_std([4.0]) == (4.0, 0.0)

    def test_two_values(self):
        m, s = mean_std([1.0, 3.0])
        assert m == 2.0
        assert s == pytest.approx(math.sqrt(2.0))


class TestRelativeError:
    def test_basic(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_reference_zero_measured(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_reference_nonzero_measured(self):
        assert relative_error(1.0, 0.0) == math.inf

    def test_negative_values(self):
        assert relative_error(-9.0, -10.0) == pytest.approx(0.1)


class TestSummarize:
    def test_groups(self):
        out = summarize({"a": [1.0, 2.0, 3.0], "b": []})
        assert out["a"]["mean"] == 2.0
        assert out["a"]["n"] == 3
        assert out["b"]["n"] == 0
        assert math.isnan(out["b"]["mean"])

    def test_single_sample_std_zero(self):
        out = summarize({"a": [5.0]})
        assert out["a"]["std"] == 0.0
