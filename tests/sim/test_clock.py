"""Tests for repro.sim.clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)

    def test_advance_to(self):
        c = VirtualClock()
        assert c.advance_to(3.5) == 3.5
        assert c.now == 3.5

    def test_advance_to_same_time_ok(self):
        c = VirtualClock(2.0)
        c.advance_to(2.0)
        assert c.now == 2.0

    def test_advance_backwards_rejected(self):
        c = VirtualClock(2.0)
        with pytest.raises(SimulationError, match="backwards"):
            c.advance_to(1.0)

    def test_advance_by(self):
        c = VirtualClock(1.0)
        assert c.advance_by(0.5) == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance_by(-0.1)

    def test_advance_by_zero_ok(self):
        c = VirtualClock(1.0)
        assert c.advance_by(0.0) == 1.0

    def test_reset(self):
        c = VirtualClock(10.0)
        c.reset()
        assert c.now == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().reset(-1.0)
