"""Tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def noop():
    pass


class TestEventQueue:
    def test_empty_queue_falsy(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0

    def test_push_and_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.push(1.0, lambda n=name: order.append(n))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, noop)
        q.push(2.0, noop)
        assert q.peek_time() == 2.0

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, noop)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), noop)

    def test_cancel_pending(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.push(2.0, noop)
        assert q.cancel(ev) is True
        assert len(q) == 1
        assert q.pop().time == 2.0

    def test_cancel_twice_returns_false(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        assert q.cancel(ev)
        assert not q.cancel(ev)

    def test_cancel_fired_event_returns_false(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.pop()
        assert not q.cancel(ev)

    def test_cancelled_event_skipped_by_peek(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.push(2.0, noop)
        q.cancel(ev)
        assert q.peek_time() == 2.0

    def test_drain_yields_in_order(self):
        q = EventQueue()
        q.push(2.0, noop)
        q.push(1.0, noop)
        times = [ev.time for ev in q.drain()]
        assert times == [1.0, 2.0]
        assert not q

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, noop)
        q.clear()
        assert not q

    def test_cancel_bulk_is_constant_time(self):
        """Cancelling 10k events must not scan the heap (O(1) each).

        The pending-membership set is swapped for a counting subclass:
        each cancel may probe it a bounded number of times, so the total
        operation count stays linear in the number of cancels — the old
        full-heap scan would have cost ~N^2/2 comparisons instead.
        """

        class CountingSet(set):
            contains_calls = 0

            def __contains__(self, item):
                CountingSet.contains_calls += 1
                return super().__contains__(item)

        q = EventQueue()
        events = [q.push(float(i), noop) for i in range(10_000)]
        q._pending = CountingSet(q._pending)
        CountingSet.contains_calls = 0
        for ev in events:
            assert q.cancel(ev) is True
        assert CountingSet.contains_calls <= 2 * len(events)
        assert len(q) == 0
        # cancelling again is a miss, still without scanning
        assert not q.cancel(events[0])
        assert CountingSet.contains_calls <= 2 * len(events) + 2

    def test_cancel_interleaved_with_pops(self):
        q = EventQueue()
        events = [q.push(float(i), noop) for i in range(100)]
        fired = q.pop()
        assert not q.cancel(fired)  # already fired
        for ev in events[1:50]:
            assert q.cancel(ev)
        assert len(q) == 50
        times = [ev.time for ev in q.drain()]
        assert times == [float(i) for i in range(50, 100)]

    def test_event_has_slots(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        with pytest.raises((AttributeError, TypeError)):
            ev.extra = 1

    def test_tag_and_payload_carried(self):
        q = EventQueue()
        q.push(1.0, noop, tag="hello", payload={"k": 1})
        ev = q.pop()
        assert ev.tag == "hello"
        assert ev.payload == {"k": 1}
