"""Tests for repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def noop():
    pass


class TestEventQueue:
    def test_empty_queue_falsy(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0

    def test_push_and_pop_in_time_order(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.push(3.0, lambda: order.append("c"))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        q = EventQueue()
        order = []
        for name in "abc":
            q.push(1.0, lambda n=name: order.append(n))
        while q:
            q.pop().action()
        assert order == ["a", "b", "c"]

    def test_peek_time(self):
        q = EventQueue()
        q.push(5.0, noop)
        q.push(2.0, noop)
        assert q.peek_time() == 2.0

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, noop)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), noop)

    def test_cancel_pending(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.push(2.0, noop)
        assert q.cancel(ev) is True
        assert len(q) == 1
        assert q.pop().time == 2.0

    def test_cancel_twice_returns_false(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        assert q.cancel(ev)
        assert not q.cancel(ev)

    def test_cancel_fired_event_returns_false(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.pop()
        assert not q.cancel(ev)

    def test_cancelled_event_skipped_by_peek(self):
        q = EventQueue()
        ev = q.push(1.0, noop)
        q.push(2.0, noop)
        q.cancel(ev)
        assert q.peek_time() == 2.0

    def test_drain_yields_in_order(self):
        q = EventQueue()
        q.push(2.0, noop)
        q.push(1.0, noop)
        times = [ev.time for ev in q.drain()]
        assert times == [1.0, 2.0]
        assert not q

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, noop)
        q.clear()
        assert not q

    def test_tag_and_payload_carried(self):
        q = EventQueue()
        q.push(1.0, noop, tag="hello", payload={"k": 1})
        ev = q.pop()
        assert ev.tag == "hello"
        assert ev.payload == {"k": 1}
