"""Tests for repro.sim.trace."""

import pytest

from repro.sim.trace import ExecutionTrace, TaskRecord


def record(worker, start, end, units=10, phase="exec", step=0, transfer=0.0):
    return TaskRecord(
        worker_id=worker,
        units=units,
        dispatch_time=start,
        transfer_time=transfer,
        exec_time=end - start - transfer,
        start_time=start,
        end_time=end,
        phase=phase,
        step=step,
    )


class TestTaskRecord:
    def test_total_time(self):
        r = record("w", 0.0, 2.0, transfer=0.5)
        assert r.total_time == pytest.approx(2.0)


class TestExecutionTrace:
    def test_duplicate_workers_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTrace(["a", "a"])

    def test_unknown_worker_rejected(self):
        tr = ExecutionTrace(["a"])
        with pytest.raises(ValueError, match="unknown worker"):
            tr.add_record(record("b", 0.0, 1.0))

    def test_backwards_record_rejected(self):
        tr = ExecutionTrace(["a"])
        bad = TaskRecord(
            worker_id="a", units=1, dispatch_time=0, transfer_time=0,
            exec_time=0, start_time=2.0, end_time=1.0,
        )
        with pytest.raises(ValueError):
            tr.add_record(bad)

    def test_makespan_tracks_latest_end(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0.0, 1.0))
        tr.add_record(record("b", 0.0, 3.0))
        assert tr.makespan == 3.0

    def test_finalize_extends_makespan(self):
        tr = ExecutionTrace(["a"])
        tr.add_record(record("a", 0.0, 1.0))
        tr.finalize(5.0)
        assert tr.makespan == 5.0

    def test_busy_time(self):
        tr = ExecutionTrace(["a"])
        tr.add_record(record("a", 0.0, 1.0))
        tr.add_record(record("a", 2.0, 4.0))
        assert tr.busy_time("a") == pytest.approx(3.0)

    def test_idle_fraction(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0.0, 4.0))
        tr.add_record(record("b", 0.0, 1.0))
        tr.finalize(4.0)
        assert tr.idle_fraction("a") == pytest.approx(0.0)
        assert tr.idle_fraction("b") == pytest.approx(0.75)

    def test_idle_fraction_zero_makespan(self):
        tr = ExecutionTrace(["a"])
        assert tr.idle_fraction("a") == 0.0

    def test_idle_fraction_clipped_to_unit_interval(self):
        tr = ExecutionTrace(["a"])
        # overlapping records can push busy > makespan; fraction clips at 0
        tr.add_record(record("a", 0.0, 3.0))
        tr.add_record(record("a", 1.0, 3.0))
        tr.finalize(3.0)
        assert tr.idle_fraction("a") == 0.0

    def test_allocated_units_by_phase(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0, 1, units=5, phase="probe"))
        tr.add_record(record("a", 1, 2, units=7, phase="exec"))
        tr.add_record(record("b", 0, 1, units=3, phase="exec"))
        assert tr.allocated_units() == {"a": 12, "b": 3}
        assert tr.allocated_units(phase="probe") == {"a": 5, "b": 0}

    def test_distribution_normalised(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0, 1, units=30))
        tr.add_record(record("b", 0, 1, units=10))
        dist = tr.distribution()
        assert dist["a"] == pytest.approx(0.75)
        assert dist["b"] == pytest.approx(0.25)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_distribution_by_step(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0, 1, units=10, step=1))
        tr.add_record(record("b", 0, 1, units=10, step=1))
        tr.add_record(record("a", 1, 2, units=100, step=2))
        dist = tr.distribution(step=1)
        assert dist == {"a": 0.5, "b": 0.5}

    def test_distribution_empty_is_zero(self):
        tr = ExecutionTrace(["a"])
        assert tr.distribution() == {"a": 0.0}

    def test_busy_intervals_sorted(self):
        tr = ExecutionTrace(["a"])
        tr.add_record(record("a", 2.0, 3.0))
        tr.add_record(record("a", 0.0, 1.0))
        intervals = tr.busy_intervals("a")
        assert [i.start for i in intervals] == [0.0, 2.0]

    def test_gantt_structure(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0.0, 1.0, phase="probe"))
        g = tr.gantt()
        assert g["a"] == [(0.0, 1.0, "probe")]
        assert g["b"] == []

    def test_phase_span(self):
        tr = ExecutionTrace(["a"])
        tr.mark_phase(0.0, "modeling")
        tr.mark_phase(2.0, "execution")
        tr.add_record(record("a", 2.0, 5.0))
        tr.finalize(5.0)
        assert tr.phase_span("modeling") == (0.0, 2.0)
        assert tr.phase_span("execution") == (2.0, 5.0)
        assert tr.phase_span("missing") is None

    def test_rebalance_and_overhead_accounting(self):
        tr = ExecutionTrace(["a"])
        tr.record_rebalance(1.0)
        tr.record_rebalance(2.0)
        tr.record_solver_overhead(0.1)
        tr.record_solver_overhead(0.05)
        assert tr.num_rebalances == 2
        assert tr.total_solver_overhead == pytest.approx(0.15)

    def test_records_for_ordered_by_completion(self):
        tr = ExecutionTrace(["a"])
        tr.add_record(record("a", 5.0, 6.0))
        tr.add_record(record("a", 0.0, 1.0))
        recs = tr.records_for("a")
        assert [r.end_time for r in recs] == [1.0, 6.0]

    def test_total_units(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0, 1, units=5))
        tr.add_record(record("b", 0, 1, units=6))
        assert tr.total_units() == 11


class TestPhaseSummary:
    def test_summary_structure(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0.0, 1.0, units=10, phase="probe"))
        tr.add_record(record("b", 0.0, 2.0, units=20, phase="probe"))
        tr.add_record(record("a", 2.0, 5.0, units=70, phase="exec"))
        tr.finalize(5.0)
        summary = tr.phase_summary()
        assert set(summary) == {"probe", "exec"}
        assert summary["probe"]["units"] == 30
        assert summary["probe"]["unit_share"] == pytest.approx(0.3)
        assert summary["probe"]["span_s"] == pytest.approx(2.0)
        assert summary["exec"]["busy_s"] == pytest.approx(3.0)

    def test_empty_trace(self):
        assert ExecutionTrace(["a"]).phase_summary() == {}

    def test_marked_phase_uses_phase_span(self):
        tr = ExecutionTrace(["a"])
        tr.mark_phase(0.0, "probe")
        tr.add_record(record("a", 1.0, 2.0, units=10, phase="probe"))
        tr.mark_phase(4.0, "exec")
        tr.add_record(record("a", 4.5, 5.0, units=10, phase="exec"))
        tr.finalize(6.0)
        summary = tr.phase_summary()
        # marked phases span mark-to-mark (0..4), not the record envelope
        assert summary["probe"]["span_s"] == pytest.approx(4.0)
        # the last mark extends to the makespan
        assert summary["exec"]["span_s"] == pytest.approx(2.0)

    def test_unmarked_phase_falls_back_to_record_envelope(self):
        tr = ExecutionTrace(["a"])
        tr.mark_phase(0.0, "probe")
        tr.add_record(record("a", 0.0, 1.0, phase="probe"))
        tr.add_record(record("a", 2.0, 5.0, phase="exec"))  # never marked
        tr.finalize(5.0)
        summary = tr.phase_summary()
        assert summary["exec"]["span_s"] == pytest.approx(3.0)

    def test_plb_initial_phase_share(self, small_cluster):
        """The modeling phase consumes a bounded share of the data."""
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul

        app = MatMul(n=16384)
        res = Runtime(small_cluster, app.codelet(), seed=1).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        summary = res.trace.phase_summary()
        assert 0.0 < summary["probe"]["unit_share"] <= 0.35


class TestTraceSerialisation:
    def make_trace(self):
        tr = ExecutionTrace(["a", "b"])
        tr.add_record(record("a", 0.0, 1.5, units=7, phase="probe", step=1))
        tr.add_record(record("b", 0.5, 3.0, units=9, transfer=0.25))
        # one record exercising every optional field the executor stamps
        tr.add_record(TaskRecord(
            worker_id="a", units=4, dispatch_time=1.5, transfer_time=0.1,
            exec_time=0.8, start_time=1.6, end_time=2.7, phase="exec",
            step=2, start_unit=16, retries=2, retry_time=0.2,
            decision="d0003",
        ))
        tr.mark_phase(0.0, "modeling")
        tr.record_rebalance(2.0)
        tr.record_solver_overhead(0.01, time=0.75)
        tr.record_failure(2.5, "b")
        tr.record_recovery(2.9, "b")
        tr.record_lost_block(2.5, "b", 5, start_unit=20)
        tr.finalize(3.5)
        return tr

    def test_roundtrip_preserves_everything(self):
        original = self.make_trace()
        rebuilt = ExecutionTrace.from_dict(original.to_dict())
        assert rebuilt.worker_ids == original.worker_ids
        assert rebuilt.makespan == original.makespan
        assert rebuilt.num_rebalances == original.num_rebalances
        assert rebuilt.total_solver_overhead == original.total_solver_overhead
        assert rebuilt.solver_overhead_times == original.solver_overhead_times
        assert rebuilt.failures == original.failures
        assert rebuilt.recoveries == original.recoveries
        assert rebuilt.lost_blocks == original.lost_blocks
        assert len(rebuilt.records) == len(original.records)
        assert rebuilt.records == original.records
        assert rebuilt.idle_fractions() == original.idle_fractions()

    def test_roundtrip_is_lossless_by_dict_equality(self):
        original = self.make_trace()
        data = original.to_dict()
        assert ExecutionTrace.from_dict(data).to_dict() == data

    def test_roundtrip_lossless_for_generated_traces(self):
        """Property-style: random traces survive the round trip exactly.

        Seeded exhaustively over the optional fields (decision ids,
        retry charges, range tracking, fault events) that historically
        leaked out of ``to_dict`` — a regression here means a field was
        added to ``TaskRecord`` or the trace without serialising it.
        """
        import random

        rng = random.Random(1234)
        for case in range(25):
            workers = [f"w{i}" for i in range(rng.randint(1, 4))]
            tr = ExecutionTrace(workers)
            cursor = {w: 0.0 for w in workers}
            unit = 0
            for _ in range(rng.randint(0, 12)):
                w = rng.choice(workers)
                units = rng.randint(1, 50)
                dispatch = cursor[w]
                start = dispatch + rng.choice([0.0, rng.random() * 0.1])
                duration = 0.05 + rng.random()
                retries = rng.randint(0, 2)
                tr.add_record(TaskRecord(
                    worker_id=w, units=units, dispatch_time=dispatch,
                    transfer_time=rng.random() * 0.02,
                    exec_time=duration, start_time=start,
                    end_time=start + duration, phase=rng.choice(["probe", "exec"]),
                    step=rng.randint(0, 5),
                    start_unit=rng.choice([-1, unit]),
                    retries=retries,
                    retry_time=0.01 * retries,
                    decision=rng.choice(["", f"d{case:04d}"]),
                ))
                cursor[w] = start + duration
                unit += units
            if rng.random() < 0.5:
                tr.record_failure(rng.random(), rng.choice(workers))
                tr.record_recovery(1.0 + rng.random(), rng.choice(workers))
                tr.record_lost_block(
                    rng.random(), rng.choice(workers), rng.randint(1, 9),
                    start_unit=rng.choice([-1, rng.randint(0, unit + 1)]),
                )
            if rng.random() < 0.5:
                tr.mark_phase(0.0, "modeling")
                tr.record_rebalance(rng.random())
                tr.record_solver_overhead(rng.random() * 0.01, time=rng.random())
            tr.finalize(max(cursor.values(), default=0.0) + rng.random())
            data = tr.to_dict()
            assert ExecutionTrace.from_dict(data).to_dict() == data

    def test_legacy_three_wide_lost_blocks_accepted(self):
        data = self.make_trace().to_dict()
        data["lost_blocks"] = [b[:3] for b in data["lost_blocks"]]
        rebuilt = ExecutionTrace.from_dict(data)
        # pre-range-tracking entries read back with start_unit = -1
        assert rebuilt.lost_blocks == [(2.5, "b", 5, -1)]

    def test_legacy_payload_without_overhead_times_accepted(self):
        data = self.make_trace().to_dict()
        del data["solver_overhead_times"]
        rebuilt = ExecutionTrace.from_dict(data)
        # times default to 0.0 per recorded overhead, lengths stay paired
        assert rebuilt.solver_overhead_times == [0.0]
        assert rebuilt.total_solver_overhead == pytest.approx(0.01)

    def test_mismatched_overhead_times_rejected(self):
        data = self.make_trace().to_dict()
        data["solver_overhead_times"] = [0.0, 1.0]
        with pytest.raises(ValueError):
            ExecutionTrace.from_dict(data)

    def test_json_compatible(self):
        import json

        payload = json.dumps(self.make_trace().to_dict())
        rebuilt = ExecutionTrace.from_dict(json.loads(payload))
        assert rebuilt.total_units() == 20

    def test_missing_key_rejected(self):
        data = self.make_trace().to_dict()
        del data["records"]
        with pytest.raises(ValueError, match="missing key"):
            ExecutionTrace.from_dict(data)

    def test_malformed_record_rejected(self):
        data = self.make_trace().to_dict()
        data["records"][0]["worker_id"] = "ghost"
        with pytest.raises(ValueError):
            ExecutionTrace.from_dict(data)
