"""Tests for repro.sim.random."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("dev/exec")
        b = RandomStreams(42).stream("dev/exec")
        assert a.random() == b.random()

    def test_different_keys_independent(self):
        rs = RandomStreams(42)
        a = rs.stream("a").random(100)
        b = rs.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("k").random()
        b = RandomStreams(2).stream("k").random()
        assert a != b

    def test_stream_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_creation_order_irrelevant(self):
        rs1 = RandomStreams(7)
        rs1.stream("first")
        v1 = rs1.stream("second").random()
        rs2 = RandomStreams(7)
        v2 = rs2.stream("second").random()
        assert v1 == v2

    def test_invalid_seed(self):
        with pytest.raises(ConfigurationError):
            RandomStreams(1.5)  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            RandomStreams(True)  # type: ignore[arg-type]

    def test_invalid_key(self):
        rs = RandomStreams(0)
        with pytest.raises(ConfigurationError):
            rs.stream("")
        with pytest.raises(ConfigurationError):
            rs.stream(3)  # type: ignore[arg-type]


class TestLognormalFactor:
    def test_zero_sigma_is_exact_one(self):
        rs = RandomStreams(0)
        assert rs.lognormal_factor("k", 0.0) == 1.0

    def test_zero_sigma_consumes_no_randomness(self):
        rs = RandomStreams(0)
        rs.lognormal_factor("k", 0.0)
        after = rs.stream("k").random()
        fresh = RandomStreams(0).stream("k").random()
        assert after == fresh

    def test_positive(self):
        rs = RandomStreams(0)
        for i in range(50):
            assert rs.lognormal_factor(f"k{i}", 0.5) > 0.0

    def test_unit_median(self):
        rs = RandomStreams(3)
        draws = [rs.lognormal_factor("same-key", 0.1) for _ in range(2000)]
        assert np.median(draws) == pytest.approx(1.0, abs=0.02)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomStreams(0).lognormal_factor("k", -0.1)


class TestFork:
    def test_fork_deterministic(self):
        a = RandomStreams(5).fork("rep1").stream("k").random()
        b = RandomStreams(5).fork("rep1").stream("k").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(5)
        child = parent.fork("rep1")
        assert parent.stream("k").random() != child.stream("k").random()

    def test_forks_differ_by_suffix(self):
        parent = RandomStreams(5)
        a = parent.fork("rep1").stream("k").random()
        b = parent.fork("rep2").stream("k").random()
        assert a != b
