"""Tests for repro.sim.engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestEngine:
    def test_schedule_and_run(self):
        e = Engine()
        seen = []
        e.schedule_at(1.0, lambda: seen.append(e.now))
        e.schedule_at(0.5, lambda: seen.append(e.now))
        end = e.run()
        assert seen == [0.5, 1.0]
        assert end == 1.0

    def test_schedule_after(self):
        e = Engine()
        seen = []
        e.schedule_after(2.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [2.0]

    def test_schedule_in_past_rejected(self):
        e = Engine()
        e.schedule_at(1.0, lambda: None)
        e.run()
        with pytest.raises(SimulationError, match="past"):
            e.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        e = Engine()
        seen = []

        def first():
            seen.append("first")
            e.schedule_after(1.0, lambda: seen.append("second"))

        e.schedule_at(1.0, first)
        e.run()
        assert seen == ["first", "second"]
        assert e.now == 2.0

    def test_run_until(self):
        e = Engine()
        seen = []
        e.schedule_at(1.0, lambda: seen.append(1))
        e.schedule_at(5.0, lambda: seen.append(5))
        end = e.run(until=2.0)
        assert seen == [1]
        assert end == 2.0
        assert len(e.queue) == 1

    def test_step_returns_event(self):
        e = Engine()
        e.schedule_at(1.5, lambda: None, tag="t")
        ev = e.step()
        assert ev.time == 1.5
        assert ev.tag == "t"
        assert e.now == 1.5

    def test_event_budget_guard(self):
        e = Engine(max_events=10)

        def loop():
            e.schedule_after(1.0, loop)

        e.schedule_at(0.0, loop)
        with pytest.raises(SimulationError, match="budget"):
            e.run()

    def test_run_not_reentrant(self):
        e = Engine()
        errors = []

        def recurse():
            try:
                e.run()
            except SimulationError as exc:
                errors.append(exc)

        e.schedule_at(1.0, recurse)
        e.run()
        assert len(errors) == 1

    def test_reset(self):
        e = Engine()
        e.schedule_at(1.0, lambda: None)
        e.run()
        e.schedule_at(2.0, lambda: None)
        e.reset()
        assert e.now == 0.0
        assert not e.queue
        assert e.processed_events == 0

    def test_cancel_via_engine(self):
        e = Engine()
        seen = []
        ev = e.schedule_at(1.0, lambda: seen.append(1))
        e.schedule_at(2.0, lambda: seen.append(2))
        assert e.cancel(ev)
        e.run()
        assert seen == [2]

    def test_max_events_validation(self):
        with pytest.raises(SimulationError):
            Engine(max_events=0)


class TestPeriodicTaskCancellation:
    """The mid-fire cancellation contract of PeriodicTask.

    A tick pops its own event before running the action, so a cancel
    issued *during* the action (or by a same-instant event) used to
    find no pending event, return False, and let the task re-arm —
    leaving a stray tick in the queue after teardown.  The task now
    latches cancellation and never reschedules past it.
    """

    def test_cancel_from_inside_action_stops_rearming(self):
        e = Engine()
        ticks = []
        task = None

        def action(now):
            ticks.append(now)
            task.cancel()

        task = e.schedule_periodic(1.0, action)
        e.run()
        assert ticks == [1.0]
        assert not task.active
        assert len(e.queue) == 0

    def test_cancel_from_same_instant_event_stops_rearming(self):
        # an event at the tick's own timestamp, scheduled by the tick,
        # cancels the task: the pending event is the *next* tick, which
        # must be swept and never replaced
        e = Engine()
        ticks = []
        task = None

        def action(now):
            ticks.append(now)
            if len(ticks) == 2:
                e.schedule_at(now, lambda: task.cancel())

        task = e.schedule_periodic(1.0, action)
        e.run()
        assert ticks == [1.0, 2.0]
        assert not task.active
        assert len(e.queue) == 0

    def test_cancelled_task_never_fires_again_even_if_continue_true(self):
        e = Engine()
        ticks = []
        task = None

        def action(now):
            ticks.append(now)
            if len(ticks) == 3:
                task.cancel()

        task = e.schedule_periodic(0.5, action, continue_while=lambda: True)
        e.run()
        assert ticks == [0.5, 1.0, 1.5]
        assert len(e.queue) == 0

    def test_mid_fire_cancel_reports_no_pending_event(self):
        e = Engine()
        results = []
        task = None

        def action(now):
            # the tick's own event already popped: nothing pending
            results.append(task.cancel())

        task = e.schedule_periodic(1.0, action)
        e.run()
        assert results == [False]
        assert len(e.queue) == 0

    def test_idle_cancel_still_sweeps_pending_tick(self):
        e = Engine()
        task = e.schedule_periodic(1.0, lambda now: None)
        assert task.cancel() is True
        assert len(e.queue) == 0
        e.run()
        assert e.processed_events == 0
