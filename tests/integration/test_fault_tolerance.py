"""Fault-injection tests: the paper's Sec. VI device-failure scenario.

A device becomes permanently unavailable mid-run; its in-flight block is
lost and must be reprocessed by the survivors.  Every policy must finish
the whole domain (the runtime replays lost ranges), and adaptive
policies must redistribute.  Transient failures additionally return:
the recovered device must be folded back in.
"""

import pytest

from repro import HDSS, Acosta, Greedy, Oracle, PLBHeC, Runtime
from repro.apps import MatMul
from repro.cluster import GroundTruth
from repro.errors import ConfigurationError, ConvergenceError
from repro.experiments.runner import make_policy
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.runtime.sim_executor import (
    DeviceFailure,
    SimulatedExecutor,
    TransientFailure,
)


def run_with_failure(small_cluster, policy, *, n=8192, fail="alpha.gpu0", at=0.5):
    app = MatMul(n=n)
    # place the failure mid-run relative to an undisturbed execution
    base = Runtime(small_cluster, app.codelet(), seed=5).run(
        policy.__class__() if not isinstance(policy, Oracle) else policy,
        app.total_units,
        app.default_initial_block_size(),
    )
    t_fail = base.makespan * at
    rt = Runtime(
        small_cluster,
        app.codelet(),
        seed=5,
        failures=(DeviceFailure(device_id=fail, time=t_fail),),
    )
    return base, rt.run(policy, app.total_units, app.default_initial_block_size())


class TestFailureValidation:
    def test_unknown_device_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(ConfigurationError, match="unknown device"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                failures=(DeviceFailure(device_id="ghost", time=1.0),),
            )

    def test_unknown_transient_device_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(ConfigurationError, match="'ghost'"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                transients=(
                    TransientFailure(device_id="ghost", time=1.0, downtime=1.0),
                ),
            )

    def test_all_devices_failing_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(ConfigurationError, match="every device"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                failures=tuple(
                    DeviceFailure(device_id=d.device_id, time=1.0)
                    for d in small_cluster.devices()
                ),
            )


class TestFailureSemantics:
    def test_whole_domain_still_processed(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        assert res.trace.total_units() >= MatMul(n=8192).total_units

    def test_lost_range_reprocessed_exactly(self, small_cluster):
        """Completed records must tile the domain (lost block replayed)."""
        _, res = run_with_failure(small_cluster, Greedy())
        covered = set()
        for r in res.trace.records:
            pass  # records carry units but not ranges; use totals instead
        # total completed units == domain + the replayed lost block
        assert res.trace.total_units() >= 8192

    def test_failure_recorded_in_trace(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        assert len(res.trace.failures) == 1
        assert res.trace.failures[0][1] == "alpha.gpu0"

    def test_failed_device_receives_no_further_work(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        t_fail = res.trace.failures[0][0]
        for r in res.trace.records_for("alpha.gpu0"):
            assert r.start_time <= t_fail

    def test_makespan_degrades_but_finishes(self, small_cluster):
        base, res = run_with_failure(small_cluster, Greedy())
        assert res.makespan > base.makespan  # losing the big GPU hurts
        assert res.makespan < base.makespan * 50  # ...but not unboundedly


class TestPolicyFailureHandling:
    @pytest.mark.parametrize(
        "policy_factory",
        [Greedy, Acosta, HDSS, lambda: HDSS(per_device_growth=True), PLBHeC],
        ids=["greedy", "acosta", "hdss", "hdss-async", "plb-hec"],
    )
    def test_policy_survives_exec_phase_failure(self, small_cluster, policy_factory):
        _, res = run_with_failure(small_cluster, policy_factory(), at=0.6)
        assert res.trace.total_units() >= 8192

    @pytest.mark.parametrize(
        "policy_factory",
        [Greedy, Acosta, HDSS, PLBHeC],
        ids=["greedy", "acosta", "hdss", "plb-hec"],
    )
    def test_policy_survives_early_failure(self, small_cluster, policy_factory):
        """Failure during probing/bootstrap phases must not deadlock."""
        _, res = run_with_failure(small_cluster, policy_factory(), at=0.05)
        assert res.trace.total_units() >= 8192

    def test_oracle_mops_up(self, small_cluster):
        app = MatMul(n=8192)
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        _, res = run_with_failure(small_cluster, Oracle(gt), at=0.5)
        assert res.trace.total_units() >= 8192

    def test_plb_redistributes_over_survivors(self, small_cluster):
        policy = PLBHeC(num_steps=8)
        _, res = run_with_failure(small_cluster, policy, at=0.5)
        # after the failure, a fresh partition excludes the failed device
        last = policy.selection_history[-1]
        assert last.units_by_device.get("alpha.gpu0", 0.0) == 0.0

    def test_cpu_failure_minor_damage(self, small_cluster):
        base, res = run_with_failure(small_cluster, PLBHeC(), fail="beta.cpu")
        # losing the weakest CPU barely moves the makespan
        assert res.makespan < base.makespan * 1.6


#: Every CLI-reachable dynamic policy plus the static baseline.
ALL_POLICIES = (
    "greedy",
    "acosta",
    "hdss",
    "hdss-async",
    "gss",
    "static",
    "plb-hec",
)

#: Failure instant as a fraction of the fault-free makespan: during
#: PLB-HeC's probe rounds, mid steady state, and into the last blocks.
TIMINGS = {"probe": 0.04, "steady": 0.55, "last-block": 0.92}

#: Fault-free makespans per policy, shared across the matrix (the
#: small_cluster fixture is structurally identical for every test).
_BASELINES: dict[str, float] = {}


def _named_policy(name, small_cluster, app):
    gt = GroundTruth(small_cluster, app.kernel_characteristics())
    return make_policy(name, ground_truth=gt)


def _baseline_makespan(name, small_cluster, app):
    if name not in _BASELINES:
        result = Runtime(small_cluster, app.codelet(), seed=5).run(
            _named_policy(name, small_cluster, app),
            app.total_units,
            app.default_initial_block_size(),
        )
        _BASELINES[name] = result.makespan
    return _BASELINES[name]


class TestAllPoliciesFailureMatrix:
    """Every policy finishes after a mid-run failure, at every timing."""

    @pytest.mark.parametrize("timing", sorted(TIMINGS), ids=sorted(TIMINGS))
    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_finishes_after_failure(self, small_cluster, name, timing):
        app = MatMul(n=8192)
        t_fail = _baseline_makespan(name, small_cluster, app) * TIMINGS[timing]
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=5,
            failures=(DeviceFailure(device_id="alpha.gpu0", time=t_fail),),
        )
        res = rt.run(
            _named_policy(name, small_cluster, app),
            app.total_units,
            app.default_initial_block_size(),
        )
        assert res.trace.total_units() >= app.total_units
        for r in res.trace.records_for("alpha.gpu0"):
            assert r.start_time <= t_fail


class TestTransientRecovery:
    def _run(self, small_cluster, *, transient):
        app = MatMul(n=8192)
        base_makespan = _baseline_makespan("plb-hec", small_cluster, app)
        t_down, downtime = base_makespan * 0.3, base_makespan * 0.25
        if transient:
            faults = {
                "transients": (
                    TransientFailure("alpha.gpu0", t_down, downtime),
                )
            }
        else:
            faults = {"failures": (DeviceFailure("alpha.gpu0", t_down),)}
        rt = Runtime(small_cluster, app.codelet(), seed=5, **faults)
        res = rt.run(
            _named_policy("plb-hec", small_cluster, app),
            app.total_units,
            app.default_initial_block_size(),
        )
        return res, t_down + downtime

    def test_recovered_device_rejoins(self, small_cluster):
        res, t_up = self._run(small_cluster, transient=True)
        assert res.trace.recoveries, "recovery must be recorded"
        post = [
            r
            for r in res.trace.records_for("alpha.gpu0")
            if r.dispatch_time >= t_up
        ]
        assert post, "recovered device must receive post-recovery blocks"

    def test_transient_beats_permanent(self, small_cluster):
        transient_res, _ = self._run(small_cluster, transient=True)
        permanent_res, _ = self._run(small_cluster, transient=False)
        assert transient_res.makespan < permanent_res.makespan


class TestSolverFallbackChain:
    def _perturbed_run(self, small_cluster, policy):
        """The rebalance-provoking scenario of tests/core/test_plb_hec."""
        from repro.runtime.sim_executor import Perturbation

        app = MatMul(n=16384)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=2,
            perturbations=(
                Perturbation(device_id="alpha.gpu0", start_time=1.0, factor=5.0),
            ),
        )
        return rt.run(
            policy, app.total_units, app.default_initial_block_size()
        )

    def test_midrun_convergence_error_triggers_fallback(
        self, small_cluster, monkeypatch
    ):
        import repro.core.plb_hec as plb_mod

        # the same scenario with a healthy solver anchors the 2x bound
        healthy = self._perturbed_run(small_cluster, PLBHeC(num_steps=10))
        assert healthy.num_rebalances >= 1

        real_solve = plb_mod.solve_block_partition
        calls = {"n": 0}

        def flaky_solve(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 2:  # first partition succeeds, then the
                raise ConvergenceError("injected mid-run failure")  # solver dies
            return real_solve(*args, **kwargs)

        monkeypatch.setattr(plb_mod, "solve_block_partition", flaky_solve)
        previous = set_registry(MetricsRegistry())
        try:
            policy = PLBHeC(num_steps=10)
            res = self._perturbed_run(small_cluster, policy)
            counters = plb_mod.get_registry().snapshot()["counters"]
        finally:
            set_registry(previous)

        assert calls["n"] >= 2, "the rebalance must have re-solved"
        assert res.trace.total_units() >= 16384
        assert counters.get("plbhec.fallback", 0) > 0
        assert res.makespan <= healthy.makespan * 2.0
        stages = {
            p.method
            for p in policy.selection_history
            if p.method.startswith("fallback")
        }
        assert stages, "fallback partitions must be recorded"
