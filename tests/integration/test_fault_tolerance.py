"""Fault-injection tests: the paper's Sec. VI device-failure scenario.

A device becomes permanently unavailable mid-run; its in-flight block is
lost and must be reprocessed by the survivors.  Every policy must finish
the whole domain (the runtime replays lost ranges), and adaptive
policies must redistribute.
"""

import pytest

from repro import HDSS, Acosta, Greedy, Oracle, PLBHeC, Runtime
from repro.apps import MatMul
from repro.cluster import GroundTruth
from repro.errors import SchedulingError
from repro.runtime.sim_executor import DeviceFailure, SimulatedExecutor


def run_with_failure(small_cluster, policy, *, n=8192, fail="alpha.gpu0", at=0.5):
    app = MatMul(n=n)
    # place the failure mid-run relative to an undisturbed execution
    base = Runtime(small_cluster, app.codelet(), seed=5).run(
        policy.__class__() if not isinstance(policy, Oracle) else policy,
        app.total_units,
        app.default_initial_block_size(),
    )
    t_fail = base.makespan * at
    rt = Runtime(
        small_cluster,
        app.codelet(),
        seed=5,
        failures=(DeviceFailure(device_id=fail, time=t_fail),),
    )
    return base, rt.run(policy, app.total_units, app.default_initial_block_size())


class TestFailureValidation:
    def test_unknown_device_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(SchedulingError, match="unknown device"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                failures=(DeviceFailure(device_id="ghost", time=1.0),),
            )

    def test_all_devices_failing_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(SchedulingError, match="every device"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                failures=tuple(
                    DeviceFailure(device_id=d.device_id, time=1.0)
                    for d in small_cluster.devices()
                ),
            )


class TestFailureSemantics:
    def test_whole_domain_still_processed(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        assert res.trace.total_units() >= MatMul(n=8192).total_units

    def test_lost_range_reprocessed_exactly(self, small_cluster):
        """Completed records must tile the domain (lost block replayed)."""
        _, res = run_with_failure(small_cluster, Greedy())
        covered = set()
        for r in res.trace.records:
            pass  # records carry units but not ranges; use totals instead
        # total completed units == domain + the replayed lost block
        assert res.trace.total_units() >= 8192

    def test_failure_recorded_in_trace(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        assert len(res.trace.failures) == 1
        assert res.trace.failures[0][1] == "alpha.gpu0"

    def test_failed_device_receives_no_further_work(self, small_cluster):
        _, res = run_with_failure(small_cluster, Greedy())
        t_fail = res.trace.failures[0][0]
        for r in res.trace.records_for("alpha.gpu0"):
            assert r.start_time <= t_fail

    def test_makespan_degrades_but_finishes(self, small_cluster):
        base, res = run_with_failure(small_cluster, Greedy())
        assert res.makespan > base.makespan  # losing the big GPU hurts
        assert res.makespan < base.makespan * 50  # ...but not unboundedly


class TestPolicyFailureHandling:
    @pytest.mark.parametrize(
        "policy_factory",
        [Greedy, Acosta, HDSS, lambda: HDSS(per_device_growth=True), PLBHeC],
        ids=["greedy", "acosta", "hdss", "hdss-async", "plb-hec"],
    )
    def test_policy_survives_exec_phase_failure(self, small_cluster, policy_factory):
        _, res = run_with_failure(small_cluster, policy_factory(), at=0.6)
        assert res.trace.total_units() >= 8192

    @pytest.mark.parametrize(
        "policy_factory",
        [Greedy, Acosta, HDSS, PLBHeC],
        ids=["greedy", "acosta", "hdss", "plb-hec"],
    )
    def test_policy_survives_early_failure(self, small_cluster, policy_factory):
        """Failure during probing/bootstrap phases must not deadlock."""
        _, res = run_with_failure(small_cluster, policy_factory(), at=0.05)
        assert res.trace.total_units() >= 8192

    def test_oracle_mops_up(self, small_cluster):
        app = MatMul(n=8192)
        gt = GroundTruth(small_cluster, app.kernel_characteristics())
        _, res = run_with_failure(small_cluster, Oracle(gt), at=0.5)
        assert res.trace.total_units() >= 8192

    def test_plb_redistributes_over_survivors(self, small_cluster):
        policy = PLBHeC(num_steps=8)
        _, res = run_with_failure(small_cluster, policy, at=0.5)
        # after the failure, a fresh partition excludes the failed device
        last = policy.selection_history[-1]
        assert last.units_by_device.get("alpha.gpu0", 0.0) == 0.0

    def test_cpu_failure_minor_damage(self, small_cluster):
        base, res = run_with_failure(small_cluster, PLBHeC(), fail="beta.cpu")
        # losing the weakest CPU barely moves the makespan
        assert res.makespan < base.makespan * 1.6
