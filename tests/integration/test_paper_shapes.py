"""Integration tests: the paper's qualitative results must reproduce.

These are the headline claims of the evaluation section, asserted as
inequalities on reduced (but still meaningful) problem sizes, with the
full paper-scale numbers recorded in EXPERIMENTS.md.
"""

import pytest

from repro import HDSS, Acosta, Greedy, PLBHeC, Runtime, paper_cluster
from repro.apps import BlackScholes, GRNInference, MatMul


def run(policy, app, machines=4, seed=3):
    cluster = paper_cluster(machines)
    rt = Runtime(cluster, app.codelet(), seed=seed)
    return rt.run(policy, app.total_units, app.default_initial_block_size())


@pytest.mark.slow
class TestFig4Shapes:
    """MM: PLB-HeC > HDSS > {Acosta, Greedy} for large inputs."""

    def test_plb_wins_large_matmul(self):
        app = MatMul(n=32768)
        plb = run(PLBHeC(), app).makespan
        greedy = run(Greedy(), app).makespan
        hdss = run(HDSS(), app).makespan
        assert plb < hdss < greedy * 1.6
        assert greedy / plb > 1.5  # substantial speedup

    def test_greedy_wins_small_matmul(self):
        app = MatMul(n=4096)
        plb = run(PLBHeC(), app).makespan
        greedy = run(Greedy(), app).makespan
        assert greedy < plb

    def test_speedup_grows_with_machines(self):
        app = MatMul(n=32768)
        speedups = []
        for machines in (2, 4):
            greedy = run(Greedy(), app, machines=machines).makespan
            plb = run(PLBHeC(), app, machines=machines).makespan
            speedups.append(greedy / plb)
        assert speedups[1] > speedups[0]

    def test_one_machine_speedup_close_to_one(self):
        app = MatMul(n=32768)
        greedy = run(Greedy(), app, machines=1).makespan
        plb = run(PLBHeC(), app, machines=1).makespan
        assert 0.8 < greedy / plb < 1.6


@pytest.mark.slow
class TestFig5Shapes:
    """Black-Scholes: smaller but positive gains at large sizes."""

    def test_plb_wins_large_bs(self):
        app = BlackScholes(num_options=500_000)
        plb = run(PLBHeC(), app).makespan
        greedy = run(Greedy(), app).makespan
        assert plb < greedy

    def test_greedy_wins_small_bs(self):
        app = BlackScholes(num_options=10_000)
        plb = run(PLBHeC(), app).makespan
        greedy = run(Greedy(), app).makespan
        assert greedy < plb


@pytest.mark.slow
class TestGRNShapes:
    def test_plb_wins_grn(self):
        app = GRNInference(num_genes=60_000, candidate_pool=4096, samples=24)
        plb = run(PLBHeC(), app).makespan
        greedy = run(Greedy(), app).makespan
        hdss = run(HDSS(), app).makespan
        assert plb < greedy
        assert plb < hdss


@pytest.mark.slow
class TestFig6Shapes:
    """Distributions: GPUs dominate; PLB gives CPUs less than HDSS."""

    def test_distribution_shape(self):
        app = MatMul(n=32768)
        plb_policy = PLBHeC()
        run(plb_policy, app)
        dist = plb_policy.first_partition.fractions
        gpu = sum(v for d, v in dist.items() if "gpu" in d)
        assert gpu > 0.8
        # the strongest GPUs (A, D) receive the largest shares
        assert dist["D.gpu0"] > dist["B.gpu0"]
        assert dist["A.gpu0"] > dist["B.cpu"]

    def test_plb_distribution_qualitatively_different_from_hdss(self):
        """The curve model vs single-weight contrast the paper draws.

        HDSS's weight is an asymptotic-rate extrapolation, so it
        over-promises for the weakest GPU (whose small-block behaviour
        dominates its real throughput); PLB-HeC's fitted curve assigns
        it correspondingly less.
        """
        app = MatMul(n=32768)
        plb_policy = PLBHeC()
        run(plb_policy, app)
        plb = plb_policy.first_partition.fractions
        hdss_policy = HDSS()
        run(hdss_policy, app)
        w = hdss_policy.weights
        hdss = {d: v / sum(w.values()) for d, v in w.items()}
        assert plb["B.gpu0"] < hdss["B.gpu0"]


@pytest.mark.slow
class TestFig7Shapes:
    """Idleness: PLB < HDSS; idleness shrinks with input size."""

    def test_plb_less_idle_than_hdss(self):
        app = MatMul(n=32768)
        plb = run(PLBHeC(), app)
        hdss = run(HDSS(), app)
        plb_idle = sum(plb.idle_fractions.values()) / 8
        hdss_idle = sum(hdss.idle_fractions.values()) / 8
        assert plb_idle < hdss_idle

    def test_idleness_shrinks_with_size(self):
        small = run(PLBHeC(), MatMul(n=8192))
        large = run(PLBHeC(), MatMul(n=65536))
        small_idle = sum(small.idle_fractions.values()) / 8
        large_idle = sum(large.idle_fractions.values()) / 8
        assert large_idle < small_idle

    def test_no_rebalance_steady_state(self):
        res = run(PLBHeC(), MatMul(n=32768))
        assert res.num_rebalances <= 1  # paper: zero; tolerate one on noise
