"""Determinism and cross-backend integration tests."""

import pytest

from repro import Greedy, PLBHeC, Runtime, paper_cluster
from repro.apps import BlackScholes, MatMul


class TestDeterminism:
    def test_sim_run_reproducible(self, small_cluster):
        """Bit-identical reruns with fixed scheduler-overhead accounting."""
        app = MatMul(n=4096)
        spans = []
        traces = []
        for _ in range(2):
            rt = Runtime(small_cluster, app.codelet(), seed=17, noise_sigma=0.02)
            res = rt.run(
                PLBHeC(fixed_overhead_s=0.01),
                app.total_units,
                app.default_initial_block_size(),
            )
            spans.append(res.makespan)
            traces.append(
                [(r.worker_id, r.units, r.end_time) for r in res.trace.records]
            )
        assert spans[0] == spans[1]
        assert traces[0] == traces[1]

    def test_measured_overhead_near_reproducible(self, small_cluster):
        """Default (measured) overhead only jitters virtual time slightly."""
        app = MatMul(n=4096)
        spans = []
        for _ in range(2):
            rt = Runtime(small_cluster, app.codelet(), seed=17, noise_sigma=0.02)
            res = rt.run(PLBHeC(), app.total_units, app.default_initial_block_size())
            spans.append(res.makespan)
        assert spans[0] == pytest.approx(spans[1], rel=0.25)

    def test_seed_changes_results(self, small_cluster):
        app = MatMul(n=4096)
        spans = set()
        for seed in (1, 2):
            rt = Runtime(small_cluster, app.codelet(), seed=seed, noise_sigma=0.05)
            res = rt.run(Greedy(), app.total_units, 8)
            spans.add(res.makespan)
        assert len(spans) == 2

    def test_policies_do_not_share_state(self, small_cluster):
        """Reusing one policy object across runs must not leak state."""
        app = MatMul(n=2048)
        policy = PLBHeC(fixed_overhead_s=0.005)
        r1 = Runtime(small_cluster, app.codelet(), seed=1).run(
            policy, app.total_units, 8
        )
        r2 = Runtime(small_cluster, app.codelet(), seed=1).run(
            policy, app.total_units, 8
        )
        assert r1.makespan == pytest.approx(r2.makespan)


class TestRealBackendEndToEnd:
    def test_matmul_verified_under_plb(self, small_cluster):
        app = MatMul(n=256)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            backend="real",
            speed_factors={"beta.cpu": 2.0},
        )
        res = rt.run(PLBHeC(num_steps=2), app.total_units, 16)
        assert app.verify(res.results)

    def test_blackscholes_verified_under_greedy(self, small_cluster):
        app = BlackScholes(400, lattice_steps=128)
        rt = Runtime(small_cluster, app.codelet(), backend="real")
        res = rt.run(Greedy(num_pieces=16), app.total_units, 16)
        assert app.verify(res.results)


class TestVirtualTimeScaling:
    def test_wall_time_much_smaller_than_virtual(self):
        """A paper-scale run must simulate in a fraction of its makespan."""
        app = MatMul(n=32768)
        rt = Runtime(paper_cluster(4), app.codelet(), seed=0)
        res = rt.run(Greedy(), app.total_units, app.default_initial_block_size())
        assert res.makespan > 10.0  # tens of virtual seconds
        assert res.wall_time_s < res.makespan / 10
