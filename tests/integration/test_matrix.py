"""Completeness matrix: every application under every policy completes.

A broad safety net at small sizes — each cell runs the full pipeline
(probing, selection, execution) and checks domain conservation plus
basic trace invariants.
"""

import pytest

from repro import HDSS, Acosta, Greedy, Oracle, PLBHeC, StaticProfile, Runtime
from repro.apps import BlackScholes, GRNInference, MatMul, Stencil2D
from repro.cluster import GroundTruth
from tests.conftest import make_fitted_models

APPS = {
    "matmul": lambda: MatMul(n=2048),
    "blackscholes": lambda: BlackScholes(num_options=20_000, lattice_steps=500),
    "grn": lambda: GRNInference(num_genes=4096, candidate_pool=256, samples=24),
    "stencil": lambda: Stencil2D(4096, sweeps=500),
}

POLICIES = ["greedy", "acosta", "hdss", "hdss-async", "plb-hec", "oracle", "static"]


def build_policy(name, ground_truth, models):
    if name == "greedy":
        return Greedy()
    if name == "acosta":
        return Acosta()
    if name == "hdss":
        return HDSS()
    if name == "hdss-async":
        return HDSS(per_device_growth=True)
    if name == "plb-hec":
        return PLBHeC()
    if name == "oracle":
        return Oracle(ground_truth)
    if name == "static":
        return StaticProfile(models)
    raise AssertionError(name)


@pytest.mark.parametrize("app_name", sorted(APPS))
@pytest.mark.parametrize("policy_name", POLICIES)
def test_app_policy_matrix(app_name, policy_name, small_cluster):
    app = APPS[app_name]()
    ground_truth = GroundTruth(small_cluster, app.kernel_characteristics())
    models = make_fitted_models(ground_truth)
    policy = build_policy(policy_name, ground_truth, models)
    runtime = Runtime(small_cluster, app.codelet(), seed=8)
    result = runtime.run(
        policy, app.total_units, app.default_initial_block_size()
    )
    trace = result.trace

    # conservation: every unit processed exactly once
    assert trace.total_units() == app.total_units
    # causality: every record inside the run interval
    for r in trace.records:
        assert 0.0 <= r.start_time <= r.end_time <= result.makespan + 1e-9
    # no device is double-booked: busy intervals per worker do not overlap
    for worker in trace.worker_ids:
        intervals = trace.busy_intervals(worker)
        for a, b in zip(intervals, intervals[1:]):
            assert b.start >= a.end - 1e-9
    # idleness is a valid fraction
    for frac in result.idle_fractions.values():
        assert 0.0 <= frac <= 1.0
