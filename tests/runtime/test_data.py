"""Tests for repro.runtime.data."""

import threading

import pytest

from repro.errors import DataError
from repro.runtime.data import BlockDomain


class TestBlockDomain:
    def test_initial_state(self):
        d = BlockDomain(100)
        assert d.total_units == 100
        assert d.remaining == 100
        assert d.consumed == 0
        assert not d.exhausted

    def test_take_contiguous(self):
        d = BlockDomain(100)
        assert d.take(30) == (0, 30)
        assert d.take(30) == (30, 30)
        assert d.remaining == 40

    def test_take_clamps_to_remaining(self):
        d = BlockDomain(10)
        d.take(8)
        assert d.take(5) == (8, 2)
        assert d.exhausted

    def test_take_when_exhausted(self):
        d = BlockDomain(5)
        d.take(5)
        assert d.take(1) == (5, 0)

    def test_take_negative_floored(self):
        d = BlockDomain(10)
        assert d.take(-3) == (0, 0)
        assert d.remaining == 10

    def test_take_zero(self):
        d = BlockDomain(10)
        assert d.take(0) == (0, 0)

    def test_reset(self):
        d = BlockDomain(10)
        d.take(10)
        d.reset()
        assert d.remaining == 10

    def test_invalid_total(self):
        with pytest.raises(DataError):
            BlockDomain(0)
        with pytest.raises(DataError):
            BlockDomain(-1)
        with pytest.raises(DataError):
            BlockDomain(1.5)  # type: ignore[arg-type]
        with pytest.raises(DataError):
            BlockDomain(True)  # type: ignore[arg-type]

    def test_concurrent_takes_partition_domain(self):
        d = BlockDomain(10_000)
        grants = []
        lock = threading.Lock()

        def worker():
            while True:
                start, got = d.take(7)
                if got == 0:
                    return
                with lock:
                    grants.append((start, got))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # grants must exactly tile [0, 10000) with no overlap
        grants.sort()
        cursor = 0
        for start, got in grants:
            assert start == cursor
            cursor += got
        assert cursor == 10_000
