"""Dispatch-ordering and record-content invariants of the sim executor."""

import pytest

from repro.runtime.scheduler_api import SchedulingPolicy
from repro.runtime.sim_executor import SimulatedExecutor


class Recorder(SchedulingPolicy):
    """Fixed blocks; records the poll order of workers."""

    name = "recorder"

    def __init__(self, size=16):
        self.size = size
        self.poll_order: list[str] = []

    def next_block(self, worker_id, now):
        if now == 0.0:
            self.poll_order.append(worker_id)
        return self.size


class TestDispatchOrdering:
    def test_initial_polling_is_cluster_order(self, small_cluster, mm_kernel):
        ex = SimulatedExecutor(small_cluster, mm_kernel, seed=0)
        policy = Recorder()
        ex.run(policy, 256, 16)
        expected = [d.device_id for d in small_cluster.devices()]
        assert policy.poll_order[: len(expected)] == expected

    def test_records_have_policy_labels(self, small_cluster, mm_kernel):
        class Labeled(Recorder):
            def phase_label(self, worker_id):
                return "custom"

            def step_index(self, worker_id):
                return 7

        ex = SimulatedExecutor(small_cluster, mm_kernel, seed=0)
        trace, _ = ex.run(Labeled(), 128, 16)
        assert all(r.phase == "custom" for r in trace.records)
        assert all(r.step == 7 for r in trace.records)

    def test_transfer_and_exec_separated(self, small_cluster, mm_kernel, mm_ground_truth):
        ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        trace, _ = ex.run(Recorder(32), 64, 32)
        for r in trace.records:
            assert r.transfer_time == pytest.approx(
                mm_ground_truth.transfer_time(r.worker_id, r.units), rel=1e-12
            )
            assert r.end_time - r.start_time == pytest.approx(
                r.transfer_time + r.exec_time, rel=1e-9
            )

    def test_remote_device_pays_more_transfer(self, small_cluster, mm_kernel):
        ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        trace, _ = ex.run(Recorder(32), 128, 32)
        local = [r for r in trace.records if r.worker_id == "alpha.gpu0"][0]
        remote = [r for r in trace.records if r.worker_id == "beta.gpu0"][0]
        assert remote.transfer_time > local.transfer_time
