"""Executor fuzzing: random policies must never break the invariants.

Hypothesis drives a policy that makes arbitrary (but protocol-legal)
decisions — random block sizes, random parking — and the simulated
executor must uphold its contract regardless: exact work conservation,
causality, no double-booked devices, and termination.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.scheduler_api import SchedulingPolicy
from repro.runtime.sim_executor import DeviceFailure, SimulatedExecutor


class RandomPolicy(SchedulingPolicy):
    """Protocol-legal chaos: sizes and parking from a seeded stream."""

    name = "fuzz"

    def __init__(self, seed: int, park_probability: float, max_block: int):
        self.rng = np.random.default_rng(seed)
        self.park_probability = park_probability
        self.max_block = max_block
        self._just_parked_all = 0

    def next_block(self, worker_id: str, now: float) -> int:
        # park sometimes, but never everyone forever: after enough
        # consecutive parks, force a dispatch so the run can't deadlock
        if (
            self.rng.random() < self.park_probability
            and self._just_parked_all < len(self.ctx.device_ids) - 1
        ):
            self._just_parked_all += 1
            return 0
        self._just_parked_all = 0
        return int(self.rng.integers(1, self.max_block + 1))


class TestExecutorInvariantsUnderFuzz:
    @given(
        seed=st.integers(0, 10_000),
        park=st.floats(0.0, 0.6),
        max_block=st.integers(1, 400),
        total=st.integers(1, 3000),
        noise=st.floats(0.0, 0.1),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_invariants(self, small_cluster_factory, seed, park, max_block, total, noise):
        cluster = small_cluster_factory()
        executor = SimulatedExecutor(
            cluster, self.kernel(), noise_sigma=noise, seed=seed
        )
        policy = RandomPolicy(seed, park, max_block)
        trace, makespan = executor.run(policy, total, 8)

        # conservation
        assert trace.total_units() == total
        # causality and ordering
        for r in trace.records:
            assert 0.0 <= r.start_time <= r.end_time <= makespan + 1e-9
            assert r.exec_time >= 0 and r.transfer_time >= 0
        # no double-booking
        for worker in trace.worker_ids:
            intervals = trace.busy_intervals(worker)
            for a, b in zip(intervals, intervals[1:]):
                assert b.start >= a.end - 1e-9

    @given(
        seed=st.integers(0, 10_000),
        total=st.integers(100, 3000),
        fail_frac=st.floats(0.05, 0.9),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_invariants_with_failure(self, small_cluster_factory, seed, total, fail_frac):
        cluster = small_cluster_factory()
        # estimate the undisturbed duration to place the failure inside it
        probe_exec = SimulatedExecutor(cluster, self.kernel(), seed=seed)
        base_trace, base_span = probe_exec.run(RandomPolicy(seed, 0.0, 64), total, 8)
        executor = SimulatedExecutor(
            cluster,
            self.kernel(),
            seed=seed,
            failures=(
                DeviceFailure(
                    device_id=cluster.devices()[0].device_id,
                    time=base_span * fail_frac,
                ),
            ),
        )
        trace, makespan = executor.run(RandomPolicy(seed, 0.0, 64), total, 8)
        assert trace.total_units() >= total  # lost blocks are replayed
        for worker in trace.worker_ids:
            intervals = trace.busy_intervals(worker)
            for a, b in zip(intervals, intervals[1:]):
                assert b.start >= a.end - 1e-9

    @staticmethod
    def kernel():
        from repro.cluster import KernelCharacteristics

        return KernelCharacteristics(
            name="fuzz-kernel",
            flops_per_unit=1e7,
            bytes_in_per_unit=1e3,
            gpu_half_units=64.0,
            cpu_half_units=8.0,
        )


@pytest.fixture
def small_cluster_factory(small_cluster):
    """Factory fixture so hypothesis examples share one cluster object."""
    return lambda: small_cluster
