"""Tests for repro.runtime.scheduler_api."""

import pytest

from repro.cluster.device import CPUSpec, Device, DeviceKind
from repro.errors import SchedulingError
from repro.runtime.scheduler_api import (
    DeviceInfo,
    SchedulingContext,
    SchedulingPolicy,
)


def make_ctx(n_devices=2, total=100, initial=10):
    infos = tuple(
        DeviceInfo(
            device_id=f"m{i}.cpu",
            kind=DeviceKind.CPU,
            machine_name=f"m{i}",
            model="test",
        )
        for i in range(n_devices)
    )
    return SchedulingContext(
        devices=infos, total_units=total, initial_block_size=initial
    )


class TestDeviceInfo:
    def test_from_device(self):
        d = Device(
            "m.cpu", DeviceKind.CPU, "m", CPUSpec(model="x", cores=2, clock_ghz=1.0)
        )
        info = DeviceInfo.from_device(d)
        assert info.device_id == "m.cpu"
        assert info.kind is DeviceKind.CPU
        assert info.model == "x"


class TestSchedulingContext:
    def test_device_ids(self):
        ctx = make_ctx(3)
        assert ctx.device_ids == ("m0.cpu", "m1.cpu", "m2.cpu")

    def test_validation(self):
        with pytest.raises(SchedulingError):
            make_ctx(total=0)
        with pytest.raises(SchedulingError):
            make_ctx(initial=0)
        with pytest.raises(SchedulingError):
            SchedulingContext(devices=(), total_units=1, initial_block_size=1)

    def test_overhead_charges_accumulate_and_drain(self):
        ctx = make_ctx()
        ctx.charge_overhead(0.1, "fit")
        ctx.charge_overhead(0.05, "solve")
        assert ctx.drain_overhead() == pytest.approx(0.15)
        assert ctx.drain_overhead() == 0.0

    def test_zero_overhead_ignored(self):
        ctx = make_ctx()
        ctx.charge_overhead(0.0)
        assert ctx.drain_overhead() == 0.0

    def test_negative_overhead_rejected(self):
        ctx = make_ctx()
        with pytest.raises(SchedulingError):
            ctx.charge_overhead(-1.0)

    def test_rebalance_notes(self):
        ctx = make_ctx()
        ctx.note_rebalance()
        ctx.note_rebalance()
        assert ctx.drain_rebalances() == 2
        assert ctx.drain_rebalances() == 0


class TestSchedulingPolicyDefaults:
    class Minimal(SchedulingPolicy):
        name = "minimal"

        def next_block(self, worker_id, now):
            return self.ctx.initial_block_size

    def test_setup_stores_ctx(self):
        p = self.Minimal()
        ctx = make_ctx()
        p.setup(ctx)
        assert p.ctx is ctx

    def test_default_labels(self):
        p = self.Minimal()
        p.setup(make_ctx())
        assert p.phase_label("m0.cpu") == "exec"
        assert p.step_index("m0.cpu") == 0

    def test_default_hooks_are_noops(self):
        p = self.Minimal()
        p.setup(make_ctx())
        p.on_block_dispatched("m0.cpu", 5, 0.0)
        p.on_task_finished(None, 10, 0.0)  # type: ignore[arg-type]
