"""Tests for repro.runtime.sim_executor."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.runtime.scheduler_api import SchedulingPolicy
from repro.runtime.sim_executor import Perturbation, SimulatedExecutor
from repro.sim.trace import TaskRecord


class FixedBlocks(SchedulingPolicy):
    """Dispatch fixed-size blocks to every idle worker."""

    name = "fixed"

    def __init__(self, size=10):
        self.size = size
        self.records: list[TaskRecord] = []

    def next_block(self, worker_id, now):
        return self.size

    def on_task_finished(self, record, remaining, now):
        self.records.append(record)


class OneShotThenPark(SchedulingPolicy):
    """One block per worker, then park forever (deadlock probe)."""

    name = "oneshot"

    def setup(self, ctx):
        super().setup(ctx)
        self.given = set()

    def next_block(self, worker_id, now):
        if worker_id in self.given:
            return 0
        self.given.add(worker_id)
        return 5


class NegativeSize(SchedulingPolicy):
    name = "negative"

    def next_block(self, worker_id, now):
        return -1


@pytest.fixture
def executor(small_cluster, mm_kernel):
    return SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)


class TestSimulatedExecutor:
    def test_processes_whole_domain(self, executor):
        policy = FixedBlocks(16)
        trace, makespan = executor.run(policy, 256, 16)
        assert trace.total_units() == 256
        assert makespan > 0.0

    def test_trace_records_match_policy_observations(self, executor):
        policy = FixedBlocks(16)
        trace, _ = executor.run(policy, 128, 16)
        assert len(policy.records) == len(trace.records)

    def test_deterministic_given_seed(self, small_cluster, mm_kernel):
        runs = []
        for _ in range(2):
            ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.02, seed=9)
            _, makespan = ex.run(FixedBlocks(16), 512, 16)
            runs.append(makespan)
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self, small_cluster, mm_kernel):
        spans = set()
        for seed in (1, 2):
            ex = SimulatedExecutor(
                small_cluster, mm_kernel, noise_sigma=0.05, seed=seed
            )
            _, makespan = ex.run(FixedBlocks(16), 512, 16)
            spans.add(makespan)
        assert len(spans) == 2

    def test_zero_noise_is_noise_free(self, small_cluster, mm_kernel, mm_ground_truth):
        ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        policy = FixedBlocks(32)
        trace, _ = ex.run(policy, 64, 32)
        for r in trace.records:
            expected = mm_ground_truth.exec_time(r.worker_id, r.units)
            assert r.exec_time == pytest.approx(expected, rel=1e-12)

    def test_deadlock_detected(self, executor):
        with pytest.raises(SchedulingError, match="deadlock|unprocessed"):
            executor.run(OneShotThenPark(), 10_000, 16)

    def test_negative_block_rejected(self, executor):
        with pytest.raises(SchedulingError, match="negative"):
            executor.run(NegativeSize(), 100, 16)

    def test_tail_clamped(self, executor):
        policy = FixedBlocks(100)
        trace, _ = executor.run(policy, 250, 16)
        sizes = sorted(r.units for r in trace.records)
        assert sizes[0] == 50  # the clamped tail block
        assert trace.total_units() == 250

    def test_overhead_stalls_dispatch(self, small_cluster, mm_kernel):
        class Charger(FixedBlocks):
            def on_task_finished(self, record, remaining, now):
                super().on_task_finished(record, remaining, now)
                self.ctx.charge_overhead(10.0, "think")

        ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        _, makespan_charged = ex.run(Charger(32), 512, 32)
        ex2 = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        _, makespan_free = ex2.run(FixedBlocks(32), 512, 32)
        assert makespan_charged > makespan_free + 10.0

    def test_overhead_recorded_in_trace(self, small_cluster, mm_kernel):
        class Charger(FixedBlocks):
            def on_task_finished(self, record, remaining, now):
                self.ctx.charge_overhead(0.5)

        ex = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        trace, _ = ex.run(Charger(64), 128, 64)
        assert trace.total_solver_overhead > 0.0

    def test_perturbation_slows_device(self, small_cluster, mm_kernel):
        base = SimulatedExecutor(small_cluster, mm_kernel, noise_sigma=0.0, seed=0)
        trace_base, _ = base.run(FixedBlocks(32), 64, 32)
        slowed = SimulatedExecutor(
            small_cluster,
            mm_kernel,
            noise_sigma=0.0,
            seed=0,
            perturbations=(
                Perturbation(device_id="alpha.gpu0", start_time=0.0, factor=3.0),
            ),
        )
        trace_slow, _ = slowed.run(FixedBlocks(32), 64, 32)
        base_time = trace_base.records_for("alpha.gpu0")[0].exec_time
        slow_time = trace_slow.records_for("alpha.gpu0")[0].exec_time
        assert slow_time == pytest.approx(3.0 * base_time, rel=1e-9)

    def test_perturbation_unknown_device_rejected(self, small_cluster, mm_kernel):
        with pytest.raises(ConfigurationError, match="unknown device 'nope'"):
            SimulatedExecutor(
                small_cluster,
                mm_kernel,
                perturbations=(
                    Perturbation(device_id="nope", start_time=0.0, factor=2.0),
                ),
            )

    def test_invalid_inputs(self, executor):
        with pytest.raises(Exception):
            executor.run(FixedBlocks(), 0, 16)
        with pytest.raises(Exception):
            executor.run(FixedBlocks(), 100, 0)

    def test_dispatch_confirmation_hook(self, executor):
        confirmed = []

        class Confirming(FixedBlocks):
            def on_block_dispatched(self, worker_id, granted, now):
                confirmed.append((worker_id, granted))

        executor.run(Confirming(32), 96, 32)
        assert sum(g for _, g in confirmed) == 96
