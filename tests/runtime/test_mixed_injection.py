"""Combined failure-injection scenarios: perturbations + failures."""

import pytest

from repro import Greedy, PLBHeC, Runtime
from repro.apps import MatMul
from repro.runtime.sim_executor import DeviceFailure, Perturbation


class TestMixedInjection:
    def test_perturbation_then_failure_same_device(self, small_cluster):
        """A device degrades, then dies; the run still completes."""
        app = MatMul(n=8192)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            perturbations=(
                Perturbation(device_id="alpha.gpu0", start_time=0.2, factor=3.0),
            ),
            failures=(DeviceFailure(device_id="alpha.gpu0", time=0.5),),
        )
        res = rt.run(PLBHeC(num_steps=8), app.total_units, 8)
        assert res.trace.total_units() >= 8192
        assert len(res.trace.failures) == 1

    def test_two_failures(self, small_cluster):
        app = MatMul(n=8192)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            failures=(
                DeviceFailure(device_id="alpha.gpu0", time=0.2),
                DeviceFailure(device_id="beta.gpu0", time=0.4),
            ),
        )
        res = rt.run(Greedy(), app.total_units, 8)
        assert res.trace.total_units() >= 8192
        assert len(res.trace.failures) == 2

    def test_failure_before_start(self, small_cluster):
        """A device dead from t=0 simply never participates."""
        app = MatMul(n=4096)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            failures=(DeviceFailure(device_id="beta.gpu0", time=0.0),),
        )
        res = rt.run(Greedy(), app.total_units, 8)
        assert res.trace.total_units() == 4096
        assert res.trace.allocated_units()["beta.gpu0"] == 0

    def test_failure_after_completion_ignored(self, small_cluster):
        """A failure scheduled past the end must not extend the makespan."""
        app = MatMul(n=2048)
        base = Runtime(small_cluster, app.codelet(), seed=4).run(
            Greedy(), app.total_units, 8
        )
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            failures=(
                DeviceFailure(
                    device_id="alpha.gpu0", time=base.makespan * 100
                ),
            ),
        )
        res = rt.run(Greedy(), app.total_units, 8)
        assert res.makespan == pytest.approx(base.makespan, rel=1e-9)

    def test_duplicate_failure_entries_harmless(self, small_cluster):
        app = MatMul(n=4096)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            failures=(
                DeviceFailure(device_id="beta.cpu", time=0.1),
                DeviceFailure(device_id="beta.cpu", time=0.15),
            ),
        )
        res = rt.run(Greedy(), app.total_units, 8)
        assert res.trace.total_units() >= 4096
        assert len(res.trace.failures) == 1  # second event is a no-op

    def test_failure_plus_rebalancing_interplay(self, small_cluster):
        """PLB-HeC handles a slowdown AND a different device's death."""
        app = MatMul(n=16384)
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=4,
            perturbations=(
                Perturbation(device_id="beta.gpu0", start_time=0.3, factor=2.0),
            ),
            failures=(DeviceFailure(device_id="alpha.cpu", time=0.6),),
        )
        res = rt.run(PLBHeC(num_steps=8), app.total_units, 16)
        assert res.trace.total_units() >= 16384
        # the dead CPU did no work after its failure
        t_fail = res.trace.failures[0][0]
        for r in res.trace.records_for("alpha.cpu"):
            assert r.start_time <= t_fail
