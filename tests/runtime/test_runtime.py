"""Tests for repro.runtime.runtime (the facade)."""

import pytest

from repro.balancers import Greedy
from repro.errors import ConfigurationError
from repro.runtime import Runtime
from repro.apps import MatMul


class TestRuntime:
    def test_invalid_backend(self, small_cluster):
        app = MatMul(n=128)
        with pytest.raises(ConfigurationError, match="backend"):
            Runtime(small_cluster, app.codelet(), backend="quantum")

    def test_sim_run_result_fields(self, small_cluster):
        app = MatMul(n=256)
        rt = Runtime(small_cluster, app.codelet(), seed=1)
        res = rt.run(Greedy(num_pieces=8), app.total_units, 8)
        assert res.backend == "sim"
        assert res.policy_name == "greedy"
        assert res.total_units == 256
        assert res.makespan > 0
        assert res.results is None
        assert res.wall_time_s > 0
        assert set(res.idle_fractions) == {
            d.device_id for d in small_cluster.devices()
        }

    def test_real_run_returns_results(self, small_cluster):
        app = MatMul(n=128)
        rt = Runtime(small_cluster, app.codelet(), backend="real")
        res = rt.run(Greedy(num_pieces=8), app.total_units, 8)
        assert res.backend == "real"
        assert res.results is not None
        assert app.verify(res.results)

    def test_default_initial_block_size(self, small_cluster):
        app = MatMul(n=512)
        rt = Runtime(small_cluster, app.codelet(), seed=1)
        res = rt.run(Greedy(), app.total_units)  # default ~1%
        assert res.total_units == 512

    def test_properties_delegate_to_trace(self, small_cluster):
        app = MatMul(n=256)
        rt = Runtime(small_cluster, app.codelet(), seed=1)
        res = rt.run(Greedy(num_pieces=8), app.total_units, 8)
        assert res.num_rebalances == res.trace.num_rebalances
        assert res.solver_overhead_s == res.trace.total_solver_overhead

    def test_summary_readable(self, small_cluster):
        from repro import PLBHeC

        app = MatMul(n=2048)
        rt = Runtime(small_cluster, app.codelet(), seed=1)
        res = rt.run(PLBHeC(), app.total_units, 8)
        text = res.summary()
        assert "plb-hec" in text
        assert "units" in text
        assert "idleness" in text
        assert "probing" in text
