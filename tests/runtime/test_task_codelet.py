"""Tests for repro.runtime.task and repro.runtime.codelet."""

import pytest

from repro.cluster.device import DeviceKind
from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import ConfigurationError, SchedulingError
from repro.runtime.codelet import Codelet
from repro.runtime.task import Task, TaskState


def kernel():
    return KernelCharacteristics(name="k", flops_per_unit=1.0, bytes_in_per_unit=1.0)


class TestTask:
    def test_lifecycle(self):
        t = Task(task_id=1, worker_id="w", start_unit=0, units=10)
        assert t.state is TaskState.PENDING
        t.mark_running(1.0)
        assert t.state is TaskState.RUNNING
        assert t.start_time == 1.0
        t.mark_done(2.0)
        assert t.state is TaskState.DONE
        assert t.end_time == 2.0

    def test_cannot_run_twice(self):
        t = Task(task_id=1, worker_id="w", start_unit=0, units=10)
        t.mark_running(1.0)
        with pytest.raises(SchedulingError):
            t.mark_running(2.0)

    def test_cannot_finish_pending(self):
        t = Task(task_id=1, worker_id="w", start_unit=0, units=10)
        with pytest.raises(SchedulingError):
            t.mark_done(1.0)

    def test_total_time(self):
        t = Task(task_id=1, worker_id="w", start_unit=0, units=10)
        t.transfer_time = 0.5
        t.exec_time = 1.5
        assert t.total_time == 2.0


class TestCodelet:
    def test_sim_only_codelet(self):
        c = Codelet(name="c", kernel=kernel())
        assert c.simulation_only
        with pytest.raises(ConfigurationError, match="no real implementation"):
            c.implementation(DeviceKind.CPU)

    def test_cpu_fallback_for_gpu(self):
        fn = lambda s, n: n
        c = Codelet(name="c", kernel=kernel(), cpu_func=fn)
        assert c.implementation(DeviceKind.GPU) is fn
        assert not c.simulation_only

    def test_gpu_func_preferred_on_gpu(self):
        cpu, gpu = (lambda s, n: "cpu"), (lambda s, n: "gpu")
        c = Codelet(name="c", kernel=kernel(), cpu_func=cpu, gpu_func=gpu)
        assert c.implementation(DeviceKind.GPU) is gpu
        assert c.implementation(DeviceKind.CPU) is cpu

    def test_gpu_only_codelet_serves_cpu(self):
        gpu = lambda s, n: "gpu"
        c = Codelet(name="c", kernel=kernel(), gpu_func=gpu)
        assert c.implementation(DeviceKind.CPU) is gpu

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Codelet(name="", kernel=kernel())
        with pytest.raises(ConfigurationError):
            Codelet(name="c", kernel="nope")  # type: ignore[arg-type]
