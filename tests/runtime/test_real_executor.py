"""Tests for repro.runtime.real_executor (thread backend)."""

import numpy as np
import pytest

from repro.cluster.perfmodel import KernelCharacteristics
from repro.errors import SchedulingError
from repro.runtime.codelet import Codelet
from repro.runtime.real_executor import RealExecutor
from repro.runtime.scheduler_api import SchedulingPolicy


def kernel():
    return KernelCharacteristics(name="k", flops_per_unit=1.0, bytes_in_per_unit=1.0)


def summing_codelet():
    """Kernel returning the range it processed (verifiable coverage)."""

    def fn(start, count):
        return list(range(start, start + count))

    return Codelet(name="sum", kernel=kernel(), cpu_func=fn)


class FixedBlocks(SchedulingPolicy):
    name = "fixed"

    def __init__(self, size=10):
        self.size = size

    def next_block(self, worker_id, now):
        return self.size


class ParkForever(SchedulingPolicy):
    name = "park"

    def next_block(self, worker_id, now):
        return 0


class TestRealExecutor:
    def test_processes_whole_domain(self, small_cluster):
        ex = RealExecutor(small_cluster, summing_codelet())
        trace, makespan, results = ex.run(FixedBlocks(16), 128, 16)
        assert trace.total_units() == 128
        covered = sorted(v for _, _, block in results for v in block)
        assert covered == list(range(128))
        assert makespan > 0.0

    def test_simulation_only_codelet_rejected(self, small_cluster):
        c = Codelet(name="simonly", kernel=kernel())
        with pytest.raises(SchedulingError, match="no real implementation"):
            RealExecutor(small_cluster, c)

    def test_speed_factor_validation(self, small_cluster):
        with pytest.raises(SchedulingError, match="unknown device"):
            RealExecutor(
                small_cluster, summing_codelet(), speed_factors={"zzz": 2.0}
            )
        with pytest.raises(Exception):
            RealExecutor(
                small_cluster, summing_codelet(), speed_factors={"alpha.cpu": -1.0}
            )

    def test_speed_factor_slows_worker(self, small_cluster):
        def busy(start, count):
            return float(np.sum(np.arange(count, dtype=np.float64) ** 2))

        c = Codelet(name="busy", kernel=kernel(), cpu_func=busy)
        ex = RealExecutor(
            small_cluster,
            c,
            speed_factors={d.device_id: 4.0 for d in small_cluster.devices()
                           if d.device_id != "alpha.cpu"},
        )
        trace, _, _ = ex.run(FixedBlocks(50), 400, 50)
        # the unthrottled worker should have processed the largest share
        units = trace.allocated_units()
        assert units["alpha.cpu"] == max(units.values())

    def test_deadlock_detected(self, small_cluster):
        ex = RealExecutor(small_cluster, summing_codelet())
        with pytest.raises(SchedulingError, match="deadlock"):
            ex.run(ParkForever(), 100, 10)

    def test_worker_exception_propagates(self, small_cluster):
        def exploding(start, count):
            raise RuntimeError("kernel crashed")

        c = Codelet(name="boom", kernel=kernel(), cpu_func=exploding)
        ex = RealExecutor(small_cluster, c)
        with pytest.raises(RuntimeError, match="kernel crashed"):
            ex.run(FixedBlocks(10), 100, 10)

    def test_results_in_completion_order_cover_domain(self, small_cluster):
        ex = RealExecutor(small_cluster, summing_codelet())
        _, _, results = ex.run(FixedBlocks(7), 70, 7)
        starts = sorted(start for start, _, _ in results)
        assert starts[0] == 0
        total = sum(count for _, count, _ in results)
        assert total == 70
