"""Tests for repro.obs.trace_export (Chrome trace-event export)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.trace_export import (
    trace_to_chrome,
    trace_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import ExecutionTrace, TaskRecord


def make_trace():
    tr = ExecutionTrace(["gpu0", "cpu0"])
    tr.add_record(
        TaskRecord(
            worker_id="gpu0", units=50, dispatch_time=0.0, transfer_time=0.2,
            exec_time=0.8, start_time=0.0, end_time=1.0, phase="probe", step=1,
        )
    )
    tr.add_record(
        TaskRecord(
            worker_id="cpu0", units=30, dispatch_time=0.0, transfer_time=0.0,
            exec_time=1.5, start_time=0.5, end_time=2.0, phase="exec", step=2,
        )
    )
    tr.mark_phase(0.0, "modeling")
    tr.mark_phase(1.0, "execution")
    tr.record_solver_overhead(0.05, time=1.0)
    tr.record_rebalance(1.5)
    tr.record_failure(1.8, "cpu0")
    tr.finalize(2.0)
    return tr


class TestTraceToEvents:
    def test_worker_tracks_named_and_scheduler_reserved(self):
        events = trace_to_events(make_trace())
        threads = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert threads[0] == "scheduler"
        assert set(threads.values()) == {"scheduler", "gpu0", "cpu0"}

    def test_transfer_and_exec_slices(self):
        events = trace_to_events(make_trace())
        slices = [e for e in events if e["ph"] == "X"]
        transfer = [e for e in slices if e["cat"] == "transfer"]
        assert len(transfer) == 1  # cpu0's record has zero transfer
        assert transfer[0]["ts"] == 0.0
        assert transfer[0]["dur"] == pytest.approx(0.2e6)
        probe = [e for e in slices if e["cat"] == "probe"][0]
        # exec slice starts after the transfer
        assert probe["ts"] == pytest.approx(0.2e6)
        assert probe["dur"] == pytest.approx(0.8e6)
        assert probe["cname"] == "thread_state_iowait"

    def test_solver_span_on_scheduler_track(self):
        events = trace_to_events(make_trace())
        solver = [e for e in events if e.get("cat") == "scheduler"]
        assert len(solver) == 1
        assert solver[0]["tid"] == 0
        assert solver[0]["ts"] == pytest.approx(1.0e6)
        assert solver[0]["dur"] == pytest.approx(0.05e6)

    def test_instant_markers(self):
        events = trace_to_events(make_trace())
        instants = {e["name"]: e for e in events if e["ph"] == "i"}
        assert instants["rebalance"]["s"] == "g"
        assert instants["phase:modeling"]["s"] == "p"
        assert instants["failure:cpu0"]["ts"] == pytest.approx(1.8e6)

    def test_run_id_label(self):
        events = trace_to_events(make_trace(), run_id="run-123")
        labels = [e for e in events if e.get("name") == "process_labels"]
        assert labels[0]["args"]["labels"] == "run-123"


class TestTraceToChrome:
    def test_single_trace_document(self):
        doc = trace_to_chrome(make_trace(), run_id="run-1")
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["run_id"] == "run-1"

    def test_multi_trace_gets_one_pid_per_label(self):
        doc = trace_to_chrome(
            [("plb-hec", make_trace()), ("greedy", make_trace())]
        )
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert names == ["plb-hec", "greedy"]

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_to_chrome([])


class TestWriteAndValidate:
    def test_write_roundtrip(self, tmp_path):
        out = tmp_path / "trace.json"
        path = write_chrome_trace(make_trace(), out, run_id="run-9")
        assert path == out
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert not list(tmp_path.glob("*.tmp*"))  # atomic write cleaned up

    def test_write_rejects_kwargs_with_prebuilt_doc(self, tmp_path):
        doc = trace_to_chrome(make_trace())
        with pytest.raises(ConfigurationError):
            write_chrome_trace(doc, tmp_path / "t.json", run_id="nope")

    def test_write_refuses_invalid_document(self, tmp_path):
        with pytest.raises(ConfigurationError, match="invalid trace"):
            write_chrome_trace({"traceEvents": [{"ph": "?"}]}, tmp_path / "t.json")

    def test_validator_catches_problems(self):
        assert validate_chrome_trace([]) == ["document must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        assert "traceEvents is empty" in validate_chrome_trace({"traceEvents": []})
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "pid": 1, "name": "no-ts-no-dur"},
                    {"ph": "i", "pid": 1, "ts": -1.0, "name": "negative"},
                    {"ph": "M", "pid": 1, "name": "meta-needs-no-ts"},
                ]
            }
        )
        assert len(errors) == 3  # bad ts, bad dur, negative ts; meta passes

    def test_simulated_run_exports_cleanly(self, small_cluster):
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul

        app = MatMul(n=4096)
        res = Runtime(small_cluster, app.codelet(), seed=0).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        doc = trace_to_chrome(res.trace, run_id=res.run_id)
        assert validate_chrome_trace(doc) == []
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"transfer", "probe", "exec"} <= cats


def make_profile_snapshot():
    """A hand-built profiler snapshot with known phases and functions."""
    return {
        "schema": 1,
        "wall_s": {"probe": 0.010, "fit": 0.050, "solve": 0.030},
        "total_self_s": 0.080,
        "phases": {
            # Deliberately unordered: export must lay out canonically.
            "solve": {
                "self_s": 0.028,
                "functions": {
                    "ipm.py:10:solve": {
                        "name": "repro.solver.ipm._solve_impl",
                        "ncalls": 4, "self_s": 0.020, "cum_s": 0.028,
                        "callers": {},
                    },
                },
            },
            "probe": {
                "self_s": 0.009,
                "functions": {
                    "plb.py:5:probe": {
                        "name": "repro.core.plb_hec._probe",
                        "ncalls": 2, "self_s": 0.009, "cum_s": 0.009,
                        "callers": {},
                    },
                },
            },
            "fit": {
                "self_s": 0.043,
                "functions": {
                    "ls.py:7:fit": {
                        "name": "repro.modeling.least_squares.fit_basis_model",
                        "ncalls": 8, "self_s": 0.040, "cum_s": 0.043,
                        "callers": {},
                    },
                    "ls.py:9:aux": {
                        "name": "repro.modeling.least_squares.r_squared",
                        "ncalls": 8, "self_s": 0.003, "cum_s": 0.003,
                        "callers": {},
                    },
                },
            },
        },
    }


class TestProfileGroup:
    """Satellite: profile slices merge into the trace losslessly."""

    def test_profile_events_in_dedicated_process_group(self):
        from repro.obs.trace_export import profile_to_events

        doc = trace_to_chrome(make_trace(), profile=make_profile_snapshot())
        assert validate_chrome_trace(doc) == []
        prof = [
            e for e in doc["traceEvents"]
            if e.get("cat", "").startswith("cpu-profile")
        ]
        assert prof, "profile slices expected"
        # Single sim trace is pid 1; the profile group must be pid 2.
        assert {e["pid"] for e in prof} == {2}
        sim = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and not e.get("cat", "").startswith("cpu-profile")
        ]
        assert all(e["pid"] == 1 for e in sim)
        # And the group is labelled.
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[2] == "cpu-profile"
        assert profile_to_events(make_profile_snapshot(), pid=9)[0]["pid"] == 9

    def test_virtual_time_spans_untouched_by_profile(self):
        plain = trace_to_chrome(make_trace(), run_id="r")
        merged = trace_to_chrome(
            make_trace(), run_id="r", profile=make_profile_snapshot()
        )
        keep = [
            e for e in merged["traceEvents"]
            if e["pid"] == 1 and not e.get("cat", "").startswith("cpu-profile")
        ]
        assert keep == plain["traceEvents"]

    def test_phase_slices_canonical_order_and_wall_widths(self):
        from repro.obs.trace_export import profile_to_events

        events = profile_to_events(make_profile_snapshot(), pid=2)
        phases = [e for e in events if e.get("cat") == "cpu-profile"]
        assert [e["name"] for e in phases] == [
            "profile:probe", "profile:fit", "profile:solve",
        ]
        # Laid end to end with the measured wall clock as width.
        assert phases[0]["ts"] == 0.0
        assert phases[0]["dur"] == pytest.approx(0.010e6)
        assert phases[1]["ts"] == pytest.approx(0.010e6)
        assert phases[1]["dur"] == pytest.approx(0.050e6)
        assert phases[2]["ts"] == pytest.approx(0.060e6)

    def test_hot_function_slices_clamped_inside_phase(self):
        from repro.obs.trace_export import profile_to_events

        events = profile_to_events(make_profile_snapshot(), pid=2)
        phases = {
            e["args"]["phase"]: e for e in events if e.get("cat") == "cpu-profile"
        }
        funcs = [e for e in events if e.get("cat") == "cpu-profile-function"]
        assert funcs, "hot-function slices expected"
        for f in funcs:
            span = phases[f["args"]["phase"]]
            assert f["ts"] >= span["ts"] - 1e-9
            assert f["ts"] + f["dur"] <= span["ts"] + span["dur"] + 1e-9
            assert f["tid"] != span["tid"]
        fit = [f for f in funcs if f["args"]["phase"] == "fit"]
        assert [f["name"] for f in fit] == [
            "repro.modeling.least_squares.fit_basis_model",
            "repro.modeling.least_squares.r_squared",
        ]
        assert fit[0]["args"]["ncalls"] == 8

    def test_round_trip_with_profile_is_lossless(self, tmp_path):
        out = tmp_path / "t.json"
        doc = trace_to_chrome(
            [("plb-hec", make_trace()), ("greedy", make_trace())],
            profile=make_profile_snapshot(),
        )
        write_chrome_trace(doc, out)
        loaded = json.loads(out.read_text())
        assert loaded == doc
        assert validate_chrome_trace(loaded) == []
        # Two sim groups then the profile group.
        assert {e["pid"] for e in loaded["traceEvents"]} == {1, 2, 3}

    def test_empty_profile_adds_no_slices(self):
        from repro.obs.trace_export import profile_to_events

        events = profile_to_events(
            {"schema": 1, "wall_s": {}, "total_self_s": 0.0, "phases": {}}, pid=2
        )
        assert [e["ph"] for e in events] == ["M", "M"]  # just the meta rows

    def test_real_profiled_run_exports_cleanly(self, small_cluster):
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul
        from repro.obs.profiler import profiling

        app = MatMul(n=4096)
        with profiling() as prof:
            res = Runtime(small_cluster, app.codelet(), seed=0).run(
                PLBHeC(), app.total_units, app.default_initial_block_size()
            )
        doc = trace_to_chrome(res.trace, run_id=res.run_id, profile=prof.snapshot())
        assert validate_chrome_trace(doc) == []
        phase_names = {
            e["name"] for e in doc["traceEvents"] if e.get("cat") == "cpu-profile"
        }
        assert {"profile:probe", "profile:fit", "profile:solve",
                "profile:execute"} <= phase_names


def make_decisions():
    return [
        {
            "id": "d0000", "trigger": "probe-round", "t": 0.0,
            "solver": {"method": "probe"}, "predicted_time": None,
        },
        {
            "id": "d0001", "trigger": "selection", "t": 1.0,
            "solver": {"method": "ipm", "iterations": 9},
            "predicted_time": 0.5,
        },
        {
            "id": "d0002", "trigger": "rebalance", "t": 1.5,
            "solver": {
                "method": "fallback-last-good",
                "fallback_stage": "last-good",
            },
            "predicted_time": 0.4,
        },
    ]


class TestDecisionInstants:
    def test_instants_on_scheduler_track(self):
        events = trace_to_events(make_trace(), decisions=make_decisions())
        marks = [e for e in events if e.get("cat") == "decision"]
        assert [m["name"] for m in marks] == [
            "decision:d0000", "decision:d0001", "decision:d0002",
        ]
        for mark in marks:
            assert mark["ph"] == "i"
            assert mark["tid"] == 0  # the scheduler track
        # virtual seconds become Chrome microseconds
        assert [m["ts"] for m in marks] == [0.0, 1.0e6, 1.5e6]

    def test_args_carry_trigger_method_and_fallback(self):
        events = trace_to_events(make_trace(), decisions=make_decisions())
        by_id = {
            e["args"]["id"]: e["args"]
            for e in events
            if e.get("cat") == "decision"
        }
        assert by_id["d0001"]["method"] == "ipm"
        assert by_id["d0001"]["fallback_stage"] is None
        assert by_id["d0002"]["fallback_stage"] == "last-good"
        assert by_id["d0000"]["trigger"] == "probe-round"

    def test_no_decisions_no_markers(self):
        events = trace_to_events(make_trace())
        assert [e for e in events if e.get("cat") == "decision"] == []

    def test_chrome_document_attaches_to_first_trace_only(self):
        doc = trace_to_chrome(
            [("run", make_trace()), ("baseline", make_trace())],
            decisions=make_decisions(),
        )
        marks = [
            e for e in doc["traceEvents"] if e.get("cat") == "decision"
        ]
        assert len(marks) == 3
        assert {m["pid"] for m in marks} == {1}
        validate_chrome_trace(doc)

    def test_round_trip_with_decisions(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(make_trace(), str(path), decisions=make_decisions())
        doc = json.loads(path.read_text())
        assert [
            e["name"]
            for e in doc["traceEvents"]
            if e.get("cat") == "decision"
        ] == ["decision:d0000", "decision:d0001", "decision:d0002"]


class TestCritpathFlags:
    def chain_trace(self):
        # a two-hop chain: gpu0 hands off to cpu0 at t=1.0, so the
        # critical path crosses workers and the flow arrows have >= 2
        # anchors to bind
        tr = ExecutionTrace(["gpu0", "cpu0"])
        tr.add_record(
            TaskRecord(
                worker_id="gpu0", units=50, dispatch_time=0.0,
                transfer_time=0.2, exec_time=0.8, start_time=0.0,
                end_time=1.0, phase="exec", step=1,
            )
        )
        tr.add_record(
            TaskRecord(
                worker_id="cpu0", units=30, dispatch_time=1.0,
                transfer_time=0.0, exec_time=1.0, start_time=1.0,
                end_time=2.0, phase="exec", step=2,
            )
        )
        tr.finalize(2.0)
        return tr

    def analyzed(self):
        from repro.obs.critpath import analyze_trace

        trace = self.chain_trace()
        return trace, analyze_trace(trace)

    def test_on_path_slices_flagged_and_recolored(self):
        trace, analysis = self.analyzed()
        events = trace_to_events(trace, critpath=analysis)
        flagged = [e for e in events if e.get("args", {}).get("critpath")]
        assert flagged, "no slice flagged on the critical path"
        # the exec slice is recolored; a flagged record's transfer slice
        # keeps the transfer palette
        assert all(
            e["cname"] == "terrible"
            for e in flagged if e["cat"] != "transfer"
        )
        on_path = {(n["worker"], n["start"], n["end"])
                   for n in analysis["path"] if n["kind"] == "task"}
        assert len({(e["ts"]) for e in flagged}) <= 2 * len(on_path)

    def test_flow_chain_links_consecutive_path_tasks(self):
        trace, analysis = self.analyzed()
        events = trace_to_events(trace, critpath=analysis)
        flows = [e for e in events if e.get("cat") == "critpath"]
        assert flows, "no critical-path flow events"
        assert {e["ph"] for e in flows} <= {"s", "t", "f"}
        assert all(e["name"] == "critical-path" for e in flows)
        starts = [e for e in flows if e["ph"] == "s"]
        finishes = [e for e in flows if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert all(e.get("bp") == "e" for e in finishes)
        ids = {e["id"] for e in flows}
        assert len(ids) == 1  # one chain, one id

    def test_without_critpath_no_flags(self):
        events = trace_to_events(make_trace())
        assert not [e for e in events if e.get("args", {}).get("critpath")]
        assert not [e for e in events if e.get("cat") == "critpath"]

    def test_chrome_document_validates_with_critpath(self):
        trace, analysis = self.analyzed()
        doc = trace_to_chrome(trace, critpath=analysis)
        assert validate_chrome_trace(doc) == []
        flagged = [e for e in doc["traceEvents"]
                   if e.get("args", {}).get("critpath")]
        assert flagged

    def test_multi_trace_flags_first_only(self):
        trace, analysis = self.analyzed()
        doc = trace_to_chrome(
            [("a", trace), ("b", self.chain_trace())], critpath=analysis
        )
        assert validate_chrome_trace(doc) == []
        by_pid = {}
        for e in doc["traceEvents"]:
            if e.get("cat") == "critpath":
                by_pid.setdefault(e["pid"], []).append(e)
        assert len(by_pid) == 1  # only the first trace carries the chain
