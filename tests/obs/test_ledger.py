"""Tests for repro.obs.ledger (decision records, attribution, explain)."""

import json
import math

import pytest

from repro.apps import MatMul
from repro.errors import ConfigurationError, SolverError
from repro.obs.ledger import (
    EXPLAIN_SCHEMA,
    DecisionLedger,
    DecisionRecord,
    decision_rows,
    json_safe,
    read_explain,
    validate_explain,
    write_explain,
)
from repro import PLBHeC, Runtime


def run_plbhec(cluster, *, seed=17, n=2048, **policy_kwargs):
    app = MatMul(n=n)
    rt = Runtime(cluster, app.codelet(), seed=seed, noise_sigma=0.02)
    return rt.run(
        PLBHeC(fixed_overhead_s=0.01, **policy_kwargs),
        app.total_units,
        app.default_initial_block_size(),
    )


class TestDecisionRecord:
    def test_unknown_trigger_rejected(self):
        with pytest.raises(ConfigurationError):
            DecisionRecord(
                decision_id="d0000", trigger="vibes", t=0.0, phase="modeling"
            )


class TestJsonSafe:
    def test_non_finite_floats_become_none(self):
        cleaned = json_safe(
            {"a": float("nan"), "b": [1.0, float("inf")], "c": {"d": -math.inf}}
        )
        assert cleaned == {"a": None, "b": [1.0, None], "c": {"d": None}}
        json.dumps(cleaned)  # strict-JSON serialisable

    def test_finite_values_untouched(self):
        assert json_safe({"x": 1.5, "y": "s", "z": 3}) == {
            "x": 1.5, "y": "s", "z": 3,
        }


class TestDecisionLedger:
    def test_ids_are_sequential(self):
        ledger = DecisionLedger("run-x")
        ids = [
            ledger.open_decision(trigger="probe-round", t=0.0, phase="modeling")
            for _ in range(3)
        ]
        assert ids == ["d0000", "d0001", "d0002"]
        assert ledger.current_id == "d0002"

    def test_attribution_routes_to_decision_and_device(self):
        ledger = DecisionLedger("run-x")
        did = ledger.open_decision(
            trigger="selection",
            t=1.0,
            phase="execution",
            allocation={"gpu": 8},
            predicted={"gpu": 1.0},
        )
        ledger.attribute(did, "gpu", units=8, predicted_s=1.2, observed_s=1.0)
        ledger.attribute(did, "gpu", units=8, predicted_s=0.8, observed_s=1.0)
        observed = ledger.observed_for(did)["gpu"]
        assert observed["blocks"] == 2
        assert observed["units"] == 16
        assert observed["mape"] == pytest.approx(0.2)
        assert observed["bias"] == pytest.approx(0.0)
        cal = ledger.device_calibration("gpu")
        assert cal.count == 2
        assert ledger.attributed_blocks == 2

    def test_unknown_decision_counts_unattributed(self):
        ledger = DecisionLedger("run-x")
        ledger.attribute(None, "gpu", units=1, predicted_s=1.0, observed_s=1.0)
        ledger.attribute("d9999", "gpu", units=1, predicted_s=1.0, observed_s=1.0)
        assert ledger.unattributed_blocks == 2
        assert ledger.attributed_blocks == 0

    def test_missing_prediction_skipped_not_scored(self):
        ledger = DecisionLedger("run-x")
        did = ledger.open_decision(
            trigger="probe-round", t=0.0, phase="modeling"
        )
        ledger.attribute(did, "gpu", units=4, predicted_s=None, observed_s=0.5)
        observed = ledger.observed_for(did)["gpu"]
        assert observed["blocks"] == 1
        assert observed["mape"] is None  # counted, not scored
        assert ledger.device_calibration("gpu").skipped == 1

    def test_fallback_stages_and_trigger_counts(self):
        ledger = DecisionLedger("run-x")
        ledger.open_decision(trigger="probe-round", t=0.0, phase="modeling")
        ledger.open_decision(
            trigger="selection",
            t=1.0,
            phase="execution",
            solver={"method": "fallback-last-good", "fallback_stage": "last-good"},
        )
        assert ledger.fallback_stages() == ["last-good"]
        assert ledger.trigger_counts() == {"probe-round": 1, "selection": 1}

    def test_to_dict_is_strict_json(self):
        ledger = DecisionLedger("run-x")
        ledger.open_decision(
            trigger="selection",
            t=1.0,
            phase="execution",
            predicted_time=float("nan"),
            solver={"kkt_error": float("nan")},
        )
        data = ledger.to_dict()
        assert data["schema"] == EXPLAIN_SCHEMA
        assert data["decisions"][0]["predicted_time"] is None
        assert data["decisions"][0]["solver"]["kkt_error"] is None
        json.dumps(data, allow_nan=False)


class TestExplainArtifact:
    def make_ledger(self):
        ledger = DecisionLedger("run-artifact")
        did = ledger.open_decision(
            trigger="selection",
            t=0.5,
            phase="execution",
            allocation={"gpu": 8},
            predicted={"gpu": 1.0},
            predicted_time=1.0,
            solver={"method": "ipm", "iterations": 9, "kkt_error": 1e-9},
        )
        ledger.attribute(did, "gpu", units=8, predicted_s=1.1, observed_s=1.0)
        return ledger

    def test_write_read_round_trip(self, tmp_path):
        ledger = self.make_ledger()
        path = tmp_path / "explain.jsonl"
        lines = write_explain(ledger, str(path))
        # header + one decision + calibration
        assert lines == 3
        parsed = read_explain(str(path))
        assert parsed["header"]["decisions"] == 1
        assert parsed["header"]["attribution"]["attributed"] == 1
        assert parsed["decisions"][0]["id"] == "d0000"
        assert parsed["calibration"]["devices"]["gpu"]["mape"] == pytest.approx(
            0.1
        )

    def test_every_line_carries_run_id(self, tmp_path):
        path = tmp_path / "explain.jsonl"
        write_explain(self.make_ledger(), str(path))
        for line in path.read_text().splitlines():
            assert json.loads(line)["run_id"] == "run-artifact"

    def test_validate_rejects_missing_header(self):
        with pytest.raises(ConfigurationError):
            validate_explain([{"type": "decision"}])

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            validate_explain([{"type": "header", "schema": 99}])

    def test_validate_rejects_count_mismatch(self):
        objs = [
            {"type": "header", "schema": EXPLAIN_SCHEMA, "decisions": 2},
            {"type": "calibration", "devices": {}},
        ]
        with pytest.raises(ConfigurationError):
            validate_explain(objs)

    def test_validate_rejects_missing_calibration(self):
        with pytest.raises(ConfigurationError):
            validate_explain(
                [{"type": "header", "schema": EXPLAIN_SCHEMA, "decisions": 0}]
            )

    def test_decision_rows_aggregate_blocks_and_mape(self):
        data = self.make_ledger().to_dict()
        rows = list(decision_rows(data))
        assert len(rows) == 1
        assert rows[0]["blocks"] == 1
        assert rows[0]["method"] == "ipm"
        assert rows[0]["fallback_stage"] is None
        assert rows[0]["mape"] == pytest.approx(0.1)


class TestPolicyLedger:
    def test_every_block_attributed(self, small_cluster):
        """100% attribution: every trace record maps to a decision."""
        result = run_plbhec(small_cluster)
        ledger = result.ledger
        assert ledger is not None
        total = len(result.trace.records)
        assert ledger.attributed_blocks == total
        assert ledger.unattributed_blocks == 0
        # the run reaches execution, so calibration has scored blocks
        cals = ledger.calibration()
        assert cals and any(c.count > 0 for c in cals.values())

    def test_trace_records_stamped_with_ledger_ids(self, small_cluster):
        result = run_plbhec(small_cluster)
        ids = {d.decision_id for d in result.ledger.decisions}
        for record in result.trace.records:
            assert record.decision in ids

    def test_ledger_deterministic_across_reruns(self, small_cluster):
        a = run_plbhec(small_cluster).ledger.to_dict()
        b = run_plbhec(small_cluster).ledger.to_dict()
        # the ambient run id is minted per run; everything else —
        # virtual times, solver numbers, residuals — must be identical
        a.pop("run_id"), b.pop("run_id")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_probe_and_selection_decisions_present(self, small_cluster):
        triggers = run_plbhec(small_cluster).ledger.trigger_counts()
        assert triggers.get("probe-round", 0) >= 2
        assert triggers.get("selection", 0) == 1

    def test_fallback_decision_has_finite_prediction(
        self, small_cluster, monkeypatch
    ):
        """A failed solve degrades to a fallback decision that still
        carries an analytic prediction (not NaN), so its blocks calibrate."""

        def boom(*args, **kwargs):
            raise SolverError("forced for test")

        monkeypatch.setattr(
            "repro.core.plb_hec.solve_block_partition", boom
        )
        result = run_plbhec(small_cluster)
        ledger = result.ledger
        stages = ledger.fallback_stages()
        assert stages, "forced solver failure must surface fallback decisions"
        fallback = [
            d for d in ledger.decisions if d.solver.get("fallback_stage")
        ]
        for d in fallback:
            assert math.isfinite(d.predicted_time)
            assert d.predicted, "fallback must predict per-device times"
        # with no solver-produced partition the chain lands on speed-ratio
        assert stages[0] == "speed-ratio"
        # fallback blocks score against the analytic prediction
        assert ledger.attributed_blocks == len(result.trace.records)
        assert any(c.count > 0 for c in ledger.calibration().values())

    def test_fault_and_recovery_open_decisions(self, small_cluster):
        from repro.runtime.sim_executor import TransientFailure

        app = MatMul(n=4096)
        baseline = run_plbhec(small_cluster, seed=5, n=4096)
        t_down = baseline.makespan * 0.5
        rt = Runtime(
            small_cluster,
            app.codelet(),
            seed=5,
            noise_sigma=0.02,
            transients=(
                TransientFailure(
                    device_id="beta.gpu0",
                    time=t_down,
                    downtime=baseline.makespan * 0.2,
                ),
            ),
        )
        result = rt.run(
            PLBHeC(fixed_overhead_s=0.01),
            app.total_units,
            app.default_initial_block_size(),
        )
        triggers = result.ledger.trigger_counts()
        assert triggers.get("fault", 0) >= 1
        assert triggers.get("recovery", 0) >= 1
