"""Tests for repro.obs.calibration (MAPE, bias, EWMA drift)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.calibration import (
    DRIFT_ALPHA,
    DeviceCalibration,
    ewma_drift,
    mape,
    relative_errors,
    signed_bias,
    summarize_calibration,
)


class TestRelativeErrors:
    def test_golden_values(self):
        # (p - o) / o: (1.1 - 1.0) = +10%, (0.8 - 1.0) = -20%
        errors = relative_errors([1.1, 0.8], [1.0, 1.0])
        assert errors == pytest.approx([0.1, -0.2])

    def test_invalid_pairs_skipped_not_propagated(self):
        errors = relative_errors(
            [float("nan"), 1.0, 2.0, -1.0, 1.5],
            [1.0, 0.0, float("inf"), 1.0, 1.0],
        )
        assert errors == pytest.approx([0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_errors([1.0], [1.0, 2.0])


class TestMapeAndBias:
    def test_golden_mape(self):
        # |+10%| and |-20%| average to 15%
        assert mape([1.1, 0.8], [1.0, 1.0]) == pytest.approx(0.15)

    def test_golden_bias_is_signed(self):
        # +10% and -20% average to -5% (net under-prediction)
        assert signed_bias([1.1, 0.8], [1.0, 1.0]) == pytest.approx(-0.05)

    def test_over_prediction_is_positive(self):
        assert signed_bias([2.0], [1.0]) == pytest.approx(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(mape([], []))
        assert math.isnan(signed_bias([], []))

    def test_all_invalid_is_nan(self):
        assert math.isnan(mape([float("nan")], [1.0]))


class TestEwmaDrift:
    def test_seeded_with_first_error(self):
        assert ewma_drift([0.4]) == pytest.approx(0.4)

    def test_golden_recurrence(self):
        # drift = 0.3*0.0 + 0.7*(0.3*0.0 + 0.7*1.0) with alpha=0.3
        expected = (1.0 - DRIFT_ALPHA) * (1.0 - DRIFT_ALPHA) * 1.0
        assert ewma_drift([1.0, 0.0, 0.0]) == pytest.approx(expected)

    def test_recent_errors_dominate(self):
        steady = ewma_drift([0.0] * 10)
        shifted = ewma_drift([0.0] * 10 + [0.5, 0.5, 0.5])
        assert steady == pytest.approx(0.0)
        assert shifted > 0.3  # tail moved even though most errors are zero

    def test_non_finite_entries_skipped(self):
        assert ewma_drift([float("nan"), 0.2]) == pytest.approx(0.2)

    def test_empty_is_nan(self):
        assert math.isnan(ewma_drift([]))

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            ewma_drift([0.1], alpha=0.0)
        with pytest.raises(ConfigurationError):
            ewma_drift([0.1], alpha=1.5)


class TestDeviceCalibration:
    def test_streaming_matches_batch_functions(self):
        predicted = [1.1, 0.8, 1.3, 0.95]
        observed = [1.0, 1.0, 1.0, 1.0]
        cal = DeviceCalibration("gpu0")
        for p, o in zip(predicted, observed):
            cal.observe(p, o)
        assert cal.mape == pytest.approx(mape(predicted, observed))
        assert cal.bias == pytest.approx(signed_bias(predicted, observed))
        assert cal.drift == pytest.approx(
            ewma_drift(relative_errors(predicted, observed))
        )
        assert cal.series == pytest.approx(
            relative_errors(predicted, observed)
        )

    def test_invalid_pairs_counted_as_skipped(self):
        cal = DeviceCalibration("cpu")
        assert cal.observe(float("nan"), 1.0) is None
        assert cal.observe(1.0, 0.0) is None
        assert cal.observe(1.2, 1.0) == pytest.approx(0.2)
        assert cal.skipped == 2
        assert cal.count == 1
        assert cal.mape == pytest.approx(0.2)

    def test_empty_statistics_are_nan(self):
        cal = DeviceCalibration("cpu")
        assert math.isnan(cal.mape)
        assert math.isnan(cal.bias)
        assert math.isnan(cal.drift)

    def test_to_dict_cleans_nan_to_none(self):
        empty = DeviceCalibration("cpu").to_dict()
        assert empty["mape"] is None
        assert empty["bias"] is None
        assert empty["drift"] is None
        assert empty["blocks"] == 0

    def test_summarize_keys_by_device(self):
        a, b = DeviceCalibration("a"), DeviceCalibration("b")
        a.observe(1.1, 1.0)
        summary = summarize_calibration([a, b])
        assert list(summary) == ["a", "b"]
        assert summary["a"]["mape"] == pytest.approx(0.1)
        assert summary["b"]["mape"] is None
