"""Tests for repro.obs.report (RunReport manifests)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.report import RunReport, config_hash

CONFIG = {"app": "matmul", "size": 4096, "machines": 4, "policy": "plb-hec",
          "seed": 0, "noise": 0.005}


def make_report(**overrides):
    kwargs = dict(
        config=CONFIG,
        makespan=1.25,
        rebalances=2,
        solver_overhead_s=0.06,
        phase_summary={"probe": {"units": 100.0}},
        metrics={"counters": {"ipm.iterations": 40.0}},
    )
    kwargs.update(overrides)
    return RunReport.build(**kwargs)


class TestBuild:
    def test_hash_derived_from_config(self):
        report = make_report()
        assert report.config_hash == config_hash(CONFIG)

    def test_default_run_id_is_deterministic(self):
        assert make_report().run_id == make_report().run_id
        assert make_report().run_id.startswith("run-")

    def test_explicit_run_id_wins(self):
        assert make_report(run_id="run-mine").run_id == "run-mine"

    def test_config_hash_is_key_order_independent(self):
        shuffled = dict(reversed(list(CONFIG.items())))
        assert config_hash(shuffled) == config_hash(CONFIG)


class TestRoundTrip:
    def test_to_from_dict_lossless(self):
        original = make_report()
        rebuilt = RunReport.from_dict(
            json.loads(json.dumps(original.to_dict()))
        )
        assert rebuilt == original

    def test_tampered_config_rejected(self):
        data = make_report().to_dict()
        data["config"]["size"] = 9999
        with pytest.raises(ConfigurationError, match="hash mismatch"):
            RunReport.from_dict(data)

    def test_missing_key_rejected(self):
        data = make_report().to_dict()
        del data["makespan"]
        with pytest.raises(ConfigurationError, match="missing key"):
            RunReport.from_dict(data)
