"""Tests for repro.obs.timeseries (sampler, store, series.jsonl, top)."""

import json

import pytest

from repro import PLBHeC, Runtime
from repro.apps import MatMul
from repro.errors import ConfigurationError, SimulationError
from repro.obs.metrics import MetricsRegistry, _series_key
from repro.obs.timeseries import (
    CLUSTER_SERIES,
    DEVICE_SERIES,
    SERIES_SCHEMA,
    ClusterSampler,
    TimeSeriesStore,
    jain_fairness,
    publish_windowed_gauges,
    read_series,
    render_top,
    sparkline,
    store_from_payload,
    validate_series,
    write_series,
)
from repro.sim.engine import Engine, PeriodicTask


class TestJainFairness:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_active_device_floors_at_one_over_n(self):
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestTimeSeriesStore:
    def test_record_and_read_back(self):
        store = TimeSeriesStore()
        store.record("util", 0.1, 0.5, device="a")
        store.record("util", 0.2, 0.7, device="a")
        (key,) = store.keys()
        assert key == _series_key("util", {"device": "a"})
        assert store.points(key) == [(0.1, 0.5), (0.2, 0.7)]

    def test_ring_buffer_bounds_points_per_series(self):
        store = TimeSeriesStore(max_points=8)
        for i in range(100):
            store.record("x", float(i), float(i))
        pts = store.points("x")
        assert len(pts) == 8
        assert pts[0] == (92.0, 92.0)  # oldest samples dropped

    def test_matching_and_values_merge_labelled_series(self):
        store = TimeSeriesStore()
        store.record("util", 0.2, 0.2, device="b")
        store.record("util", 0.1, 0.1, device="a")
        assert len(store.matching("util")) == 2
        assert store.values("util") == [0.1, 0.2]  # time-ordered merge

    def test_aggregate_windows(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.record("x", float(i), float(i))
        agg = store.aggregate("x")
        assert agg["count"] == 10
        assert agg["mean"] == pytest.approx(4.5)
        assert agg["min"] == 0.0 and agg["max"] == 9.0 and agg["last"] == 9.0
        windowed = store.aggregate("x", t_min=5.0)
        assert windowed["count"] == 5
        assert windowed["min"] == 5.0
        assert store.aggregate("missing") == {"count": 0}

    def test_payload_round_trip(self):
        store = TimeSeriesStore(max_points=4)
        store.record("a", 0.0, 1.0)
        store.record("b", 0.5, 2.0, device="x")
        clone = store_from_payload(store.to_payload())
        assert clone.keys() == store.keys()
        for key in store.keys():
            assert clone.points(key) == store.points(key)

    def test_len_and_bool(self):
        store = TimeSeriesStore()
        assert not store and len(store) == 0
        store.record("x", 0.0, 1.0)
        assert store and len(store) == 1


class TestSparkline:
    def test_width_and_extremes(self):
        line = sparkline([0.0, 1.0], width=2)
        assert len(line) == 2
        assert line[0] == "▁" and line[-1] == "█"

    def test_resamples_long_series(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_empty_is_empty(self):
        assert sparkline([], width=10) == ""


class TestEnginePeriodicTask:
    def test_fires_at_fixed_interval(self):
        engine = Engine()
        ticks = []
        engine.schedule_periodic(0.5, ticks.append, continue_while=lambda: len(ticks) < 4)
        engine.run()
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_cancel_stops_pending_tick(self):
        engine = Engine()
        ticks = []
        task = engine.schedule_periodic(0.5, ticks.append)
        assert isinstance(task, PeriodicTask) and task.active
        task.cancel()
        assert not task.active
        engine.run()
        assert ticks == []

    def test_continue_while_false_drains_engine(self):
        """The predicate is the deadlock guard: once false, no reschedule."""
        engine = Engine()
        ticks = []
        engine.schedule_periodic(0.1, ticks.append, continue_while=lambda: False)
        engine.run()
        assert ticks == [0.1]  # the already-scheduled tick still fires

    def test_non_positive_interval_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule_periodic(0.0, lambda t: None)


def _sampled_run(
    cluster, *, interval=None, seed=17, n=4096, overhead=0.002, noise=0.02
):
    app = MatMul(n=n)
    sampler = ClusterSampler(interval)
    rt = Runtime(cluster, app.codelet(), seed=seed, noise_sigma=noise)
    result = rt.run(
        PLBHeC(fixed_overhead_s=overhead),
        app.total_units,
        app.default_initial_block_size(),
        sampler=sampler,
    )
    return sampler, result


class TestClusterSampler:
    def test_auto_interval_resolves_and_samples(self, small_cluster):
        sampler, _ = _sampled_run(small_cluster, interval=0.0)
        assert sampler.interval is not None and sampler.interval > 0
        assert sampler.samples_taken > 10
        assert set(sampler.store.matching("device_util")) == {
            _series_key("device_util", {"device": d.device_id})
            for d in small_cluster.devices()
        }

    def test_records_every_declared_series(self, small_cluster):
        sampler, _ = _sampled_run(small_cluster, interval=0.0)
        names = {key.split("{", 1)[0] for key in sampler.store.keys()}
        assert names == set(CLUSTER_SERIES) | set(DEVICE_SERIES)

    def test_utilization_integrates_to_trace_busy_time(self, small_cluster):
        """Σ util·dt per device equals the trace's busy time exactly."""
        sampler, result = _sampled_run(small_cluster, interval=0.0)
        busy_by_device = {}
        for record in result.trace.records:
            busy_by_device[record.worker_id] = busy_by_device.get(
                record.worker_id, 0.0
            ) + (record.end_time - record.start_time)
        for device, expected in busy_by_device.items():
            pts = sampler.store.points(
                _series_key("device_util", {"device": device})
            )
            integral, prev_t = 0.0, 0.0
            for t, util in pts:
                integral += util * (t - prev_t)
                prev_t = t
            assert integral == pytest.approx(expected, rel=1e-9), device
            # the running busy counter agrees with the integral too
            busy_pts = sampler.store.points(
                _series_key("device_busy_s", {"device": device})
            )
            assert busy_pts[-1][1] == pytest.approx(expected, rel=1e-12)

    def test_sampling_leaves_schedule_byte_identical(self, small_cluster):
        """The acceptance property: sampler on/off, same virtual history."""
        app = MatMul(n=4096)

        def run(sampler):
            rt = Runtime(
                small_cluster, app.codelet(), seed=17, noise_sigma=0.02
            )
            result = rt.run(
                PLBHeC(fixed_overhead_s=0.002),
                app.total_units,
                app.default_initial_block_size(),
                sampler=sampler,
            )
            return result.makespan, [
                (r.worker_id, r.units, r.start_time, r.end_time)
                for r in result.trace.records
            ]

        plain = run(None)
        sampled = run(ClusterSampler(0.0))
        assert plain == sampled

    def test_completion_accounting_balances(self, small_cluster):
        sampler, result = _sampled_run(small_cluster, interval=0.0)
        completed = sampler.store.points("completed_units")
        backlog = sampler.store.points("backlog_units")
        outstanding = sampler.store.points("outstanding_units")
        total = MatMul(n=4096).total_units
        assert completed[-1][1] == total
        assert backlog[-1][1] == 0
        assert outstanding[-1][1] == 0
        # conservation holds at every tick
        for (_, c), (_, b), (_, o) in zip(completed, backlog, outstanding):
            assert c + b + o == pytest.approx(total)

    def test_fairness_and_imbalance_recorded(self, small_cluster):
        sampler, _ = _sampled_run(small_cluster, interval=0.0)
        fairness = [v for _, v in sampler.store.points("fairness")]
        assert all(0.0 < v <= 1.0 for v in fairness)
        imbalance = [v for _, v in sampler.store.points("imbalance")]
        assert all(v == 0.0 or v >= 1.0 for v in imbalance)

    def test_sampler_is_single_use(self, small_cluster):
        sampler, _ = _sampled_run(small_cluster, interval=0.0)
        app = MatMul(n=256)
        rt = Runtime(small_cluster, app.codelet(), seed=1)
        with pytest.raises(ConfigurationError, match="single-use"):
            rt.run(
                PLBHeC(fixed_overhead_s=0.002),
                app.total_units,
                8,
                sampler=sampler,
            )

    def test_real_backend_rejects_sampler(self, small_cluster):
        app = MatMul(n=256)
        rt = Runtime(small_cluster, app.codelet(), backend="real")
        with pytest.raises(ConfigurationError, match="simulated backend"):
            rt.run(
                PLBHeC(num_steps=2),
                app.total_units,
                16,
                sampler=ClusterSampler(0.1),
            )

    def test_unresolved_interval_rejected_at_start(self):
        engine = Engine()
        sampler = ClusterSampler()  # auto, but nothing resolved it
        with pytest.raises(ConfigurationError):
            sampler.start(
                engine, devices=["a"], total_units=10, work_remaining=lambda: 0
            )


class TestSeriesFile:
    def _store(self):
        store = TimeSeriesStore()
        store.record("fairness", 0.1, 0.9)
        store.record("fairness", 0.2, 0.95)
        store.record("device_util", 0.1, 0.4, device="a")
        return store

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "series.jsonl"
        store = self._store()
        write_series(
            path, store, run_id="run-x", interval=0.1, meta={"app": "t"}
        )
        header, clone = read_series(path)
        assert header["schema"] == SERIES_SCHEMA
        assert header["run_id"] == "run-x"
        assert header["interval"] == 0.1
        assert header["samples"] == 3
        assert header["meta"] == {"app": "t"}
        for key in store.keys():
            assert clone.points(key) == store.points(key)

    def test_written_file_validates(self, tmp_path):
        path = tmp_path / "series.jsonl"
        write_series(path, self._store(), run_id="r", interval=0.1, meta={})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert validate_series(lines) == []

    def test_validator_rejects_bad_documents(self):
        assert validate_series([])  # empty
        assert validate_series(["not json"])
        header = json.dumps(
            {
                "kind": "header",
                "schema": SERIES_SCHEMA,
                "run_id": "r",
                "interval": 0.1,
                "series": ["a"],
                "samples": 1,
                "meta": {},
            }
        )
        undeclared = json.dumps(
            {"kind": "sample", "series": "b", "labels": {}, "t": 0.0, "v": 1.0}
        )
        assert any(
            "undeclared" in p for p in validate_series([header, undeclared])
        )
        # json.loads accepts NaN; the validator must still reject it
        nan = '{"kind": "sample", "series": "a", "labels": {}, "t": 0.0, "v": NaN}'
        assert any("finite" in p for p in validate_series([header, nan]))

    def test_validator_enforces_time_monotonicity(self):
        header = json.dumps(
            {
                "kind": "header",
                "schema": SERIES_SCHEMA,
                "run_id": "r",
                "interval": 0.1,
                "series": ["a"],
                "samples": 2,
                "meta": {},
            }
        )
        fwd = json.dumps(
            {"kind": "sample", "series": "a", "labels": {}, "t": 1.0, "v": 0.0}
        )
        back = json.dumps(
            {"kind": "sample", "series": "a", "labels": {}, "t": 0.5, "v": 0.0}
        )
        problems = validate_series([header, fwd, back])
        assert any("backwards" in p for p in problems)


class TestWindowedGauges:
    def test_publishes_aggregates_with_labels(self):
        store = TimeSeriesStore()
        for i in range(20):
            store.record("device_util", i * 0.1, i / 20.0, device="a")
        registry = MetricsRegistry()
        count = publish_windowed_gauges(store, registry)
        assert count > 0
        snapshot = registry.snapshot()
        key = _series_key("ts.device_util.mean", {"device": "a"})
        assert snapshot["gauges"][key] == pytest.approx(0.475)
        assert _series_key("ts.device_util.p95", {"device": "a"}) in snapshot[
            "gauges"
        ]


class TestRenderTop:
    def _header_and_store(self, small_cluster):
        sampler, _ = _sampled_run(small_cluster, interval=0.0)
        header = {
            "run_id": "run-t",
            "interval": sampler.interval,
            "samples": sampler.samples_taken,
        }
        return header, sampler.store

    def test_frame_contains_devices_and_summary(self, small_cluster):
        header, store = self._header_and_store(small_cluster)
        frame = render_top(header, store)
        assert "repro top" in frame
        for device in (d.device_id for d in small_cluster.devices()):
            assert device in frame
        assert "fairness" in frame and "units left" in frame
        assert "100% done" in frame

    def test_slo_report_verdicts_render(self, small_cluster):
        header, store = self._header_and_store(small_cluster)
        report = {
            "spec": "default",
            "objectives": [
                {
                    "name": "done",
                    "expr": "last(backlog_units) <= 0",
                    "verdict": "pass",
                    "measured": 0.0,
                },
                {
                    "name": "oops",
                    "expr": "mean(fairness) > 2",
                    "verdict": "fail",
                    "measured": 0.9,
                },
            ],
        }
        frame = render_top(header, store, slo_report=report)
        assert "SLO: default" in frame
        assert "FAIL" in frame and "ok" in frame

    def test_empty_store_renders_empty_state(self):
        frame = render_top({"run_id": "r", "interval": 0.1}, TimeSeriesStore())
        assert "no device_util samples" in frame
