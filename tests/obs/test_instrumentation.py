"""Integration tests: the instrumented subsystems feed the registry."""

import pytest

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.sim.engine import Engine


@pytest.fixture
def registry():
    """Swap in a fresh default registry for the duration of the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestEngineMetrics:
    def test_run_flushes_event_counts(self, registry):
        engine = Engine()
        engine.schedule_after(1.0, lambda: None)
        engine.schedule_after(2.0, lambda: None)
        doomed = engine.schedule_after(3.0, lambda: None)
        engine.cancel(doomed)
        engine.run()
        counters = registry.snapshot()["counters"]
        assert counters["sim.events_dispatched"] == 2.0
        assert counters["sim.events_scheduled"] == 3.0
        assert counters["sim.events_cancelled"] == 1.0
        assert registry.snapshot()["gauges"]["sim.queue_max_depth"] == 3.0

    def test_consecutive_runs_publish_deltas(self, registry):
        engine = Engine()
        engine.schedule_after(1.0, lambda: None)
        engine.run()
        engine.schedule_at(engine.now + 1.0, lambda: None)
        engine.run()
        # two runs, one event each: deltas add up, never double-count
        assert registry.snapshot()["counters"]["sim.events_dispatched"] == 2.0

    def test_reset_does_not_replay_history(self, registry):
        engine = Engine()
        engine.schedule_after(1.0, lambda: None)
        engine.run()
        engine.reset()
        engine.schedule_after(1.0, lambda: None)
        engine.run()
        assert registry.snapshot()["counters"]["sim.events_dispatched"] == 2.0


class TestEndToEndCounters:
    def test_plb_hec_run_populates_registry(self, registry, small_cluster):
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul

        app = MatMul(n=4096)
        Runtime(small_cluster, app.codelet(), seed=0).run(
            PLBHeC(), app.total_units, app.default_initial_block_size()
        )
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["plbhec.probe_rounds"] > 0
        assert counters["plbhec.fit_attempts"] > 0
        assert counters["plbhec.solves"] > 0
        assert counters["ipm.solves"] > 0
        assert counters["ipm.iterations"] > 0
        assert counters["sim.events_dispatched"] > 0
        # per-device R2 gauges carry a device label
        r2_keys = [k for k in snap["gauges"] if k.startswith("plbhec.r2{device=")]
        assert len(r2_keys) == len(small_cluster.devices())
        for key in r2_keys:
            assert 0.0 <= snap["gauges"][key] <= 1.0
        assert snap["histograms"]["plbhec.solve_ms"]["count"] >= 1
        assert snap["histograms"]["ipm.solve_ms"]["count"] >= 1

    def test_ipm_solve_reports_kkt_and_restorations(self, registry):
        import numpy as np

        from repro.solver.ipm import InteriorPointSolver
        from tests.solver.test_ipm import qp_simplex

        result = InteriorPointSolver().solve(
            qp_simplex(3, [1.0, 2.0, 4.0]), np.full(3, 1 / 3)
        )
        snap = registry.snapshot()
        assert snap["counters"]["ipm.solves"] == 1.0
        assert snap["counters"]["ipm.iterations"] == float(result.iterations)
        assert snap["counters"].get("ipm.restorations", 0.0) == float(
            result.restorations
        )
        assert snap["gauges"]["ipm.kkt_error"] == pytest.approx(
            result.kkt_error, abs=1e-12
        )
