"""Tests for repro.obs.profiler (phase-attributed CPU profiling)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.profiler import (
    PROFILE_PHASES,
    PROFILE_SCHEMA,
    PhaseProfiler,
    active_profiler,
    collapsed_stacks,
    hot_functions,
    merge_profiles,
    phase_breakdown,
    profile_phase,
    profiling,
    render_flamegraph_svg,
    switch_phase,
    write_collapsed,
    write_flamegraph,
)


def burn(n=200):
    """A deterministic workload with an exact, countable call count."""
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


def outer(n=200):
    return burn(n) + burn(n)


def find_function(snap, phase, name_fragment):
    """The stats row of the first function in ``phase`` matching by name."""
    for row in snap["phases"][phase]["functions"].values():
        if name_fragment in row["name"]:
            return row
    return None


def captured_snapshot(calls_per_phase=3):
    """A snapshot with known work in probe, fit and the overhead base."""
    with profiling() as prof:
        with profile_phase("probe"):
            for _ in range(calls_per_phase):
                burn()
        with profile_phase("fit"):
            for _ in range(calls_per_phase):
                outer()
        burn()  # overhead (the base phase)
    return prof.snapshot()


class TestPhaseProfiler:
    def test_rejects_unknown_phase(self):
        prof = PhaseProfiler()
        with pytest.raises(ConfigurationError):
            prof.start("warmup")

    def test_start_twice_rejected(self):
        prof = PhaseProfiler().start()
        try:
            with pytest.raises(ConfigurationError):
                prof.start()
        finally:
            prof.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(ConfigurationError):
            PhaseProfiler().stop()

    def test_snapshot_while_running_rejected(self):
        prof = PhaseProfiler().start()
        try:
            with pytest.raises(ConfigurationError):
                prof.snapshot()
        finally:
            prof.stop()

    def test_phase_scoping_attributes_calls(self):
        prof = PhaseProfiler().start()
        with prof.phase("probe"):
            burn()
        with prof.phase("solve"):
            burn()
            burn()
        prof.stop()
        snap = prof.snapshot()
        assert find_function(snap, "probe", "burn")["ncalls"] == 1
        assert find_function(snap, "solve", "burn")["ncalls"] == 2

    def test_nested_phases_restore_outer(self):
        prof = PhaseProfiler().start()
        with prof.phase("execute"):
            with prof.phase("fit"):
                burn()
            burn()  # back in execute after the inner scope
        prof.stop()
        snap = prof.snapshot()
        assert find_function(snap, "fit", "burn")["ncalls"] == 1
        assert find_function(snap, "execute", "burn")["ncalls"] == 1

    def test_switch_replaces_phase_in_place(self):
        prof = PhaseProfiler().start()
        with prof.phase("probe"):
            burn()
            prof.switch("execute")
            burn()
        # The scoped exit must restore the base phase, not "probe".
        burn()
        prof.stop()
        snap = prof.snapshot()
        assert find_function(snap, "probe", "burn")["ncalls"] == 1
        assert find_function(snap, "execute", "burn")["ncalls"] == 1
        assert find_function(snap, "overhead", "burn")["ncalls"] == 1

    def test_wall_clock_banked_per_phase(self):
        snap = captured_snapshot()
        walls = snap["wall_s"]
        assert set(walls) >= {"probe", "fit", "overhead"}
        assert all(w >= 0.0 for w in walls.values())
        assert walls["probe"] > 0.0

    def test_snapshot_layout(self):
        snap = captured_snapshot()
        assert snap["schema"] == PROFILE_SCHEMA
        assert snap["total_self_s"] > 0.0
        for pdata in snap["phases"].values():
            for key, row in pdata["functions"].items():
                assert key.count(":") >= 2
                assert set(row) == {"name", "ncalls", "self_s", "cum_s", "callers"}

    def test_snapshot_is_json_safe(self):
        import json

        snap = captured_snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestAmbientHooks:
    def test_inactive_hooks_are_noops(self):
        assert active_profiler() is None
        with profile_phase("fit"):
            burn()
        switch_phase("solve")  # must not raise

    def test_profiling_activates_and_resets(self):
        with profiling() as prof:
            assert active_profiler() is prof
        assert active_profiler() is None

    def test_profiling_resets_on_error(self):
        with pytest.raises(RuntimeError):
            with profiling():
                raise RuntimeError("boom")
        assert active_profiler() is None

    def test_double_activation_rejected(self):
        with profiling():
            with pytest.raises(ConfigurationError):
                with profiling():
                    pass

    def test_hooks_route_into_active_profiler(self):
        with profiling() as prof:
            with profile_phase("solve"):
                burn()
        snap = prof.snapshot()
        assert find_function(snap, "solve", "burn")["ncalls"] == 1

    def test_exact_call_counts(self):
        snap = captured_snapshot(calls_per_phase=4)
        assert find_function(snap, "probe", "burn")["ncalls"] == 4
        # outer calls burn twice per invocation.
        assert find_function(snap, "fit", "burn")["ncalls"] == 8
        assert find_function(snap, "overhead", "burn")["ncalls"] == 1


class TestMergeProfiles:
    def test_merge_into_empty_initialises(self):
        snap = captured_snapshot()
        merged = merge_profiles({}, snap)
        assert merged["schema"] == PROFILE_SCHEMA
        assert merged["total_self_s"] == pytest.approx(snap["total_self_s"])

    def test_self_merge_doubles_counts_and_time(self):
        snap = captured_snapshot()
        merged = merge_profiles(merge_profiles({}, snap), snap)
        assert merged["total_self_s"] == pytest.approx(2 * snap["total_self_s"])
        for phase, pdata in snap["phases"].items():
            for key, row in pdata["functions"].items():
                mrow = merged["phases"][phase]["functions"][key]
                assert mrow["ncalls"] == 2 * row["ncalls"]
                assert mrow["self_s"] == pytest.approx(2 * row["self_s"])
        for phase, wall in snap["wall_s"].items():
            assert merged["wall_s"][phase] == pytest.approx(2 * wall)

    def test_merge_sums_caller_edges(self):
        snap = captured_snapshot()
        merged = merge_profiles(merge_profiles({}, snap), snap)
        row = find_function(snap, "fit", ".burn")
        mrow = find_function(merged, "fit", ".burn")
        assert row["callers"], "outer->burn edge expected"
        for ck, edge in row["callers"].items():
            assert mrow["callers"][ck] == pytest.approx(2 * edge)

    def test_merge_disjoint_phases(self):
        snap = captured_snapshot()
        probe_only = {
            "schema": PROFILE_SCHEMA,
            "wall_s": {"probe": snap["wall_s"]["probe"]},
            "total_self_s": snap["phases"]["probe"]["self_s"],
            "phases": {"probe": snap["phases"]["probe"]},
        }
        fit_only = {
            "schema": PROFILE_SCHEMA,
            "wall_s": {"fit": snap["wall_s"]["fit"]},
            "total_self_s": snap["phases"]["fit"]["self_s"],
            "phases": {"fit": snap["phases"]["fit"]},
        }
        merged = merge_profiles(merge_profiles({}, probe_only), fit_only)
        assert set(merged["phases"]) == {"probe", "fit"}
        assert merged["total_self_s"] == pytest.approx(
            probe_only["total_self_s"] + fit_only["total_self_s"]
        )


class TestTables:
    def test_phase_breakdown_shares_sum_to_one(self):
        bd = phase_breakdown(captured_snapshot())
        assert set(bd) <= set(PROFILE_PHASES)
        assert sum(p["share"] for p in bd.values()) == pytest.approx(1.0)

    def test_phase_breakdown_empty_snapshot(self):
        assert phase_breakdown({"total_self_s": 0.0, "phases": {}}) == {}

    def test_hot_functions_sorted_and_bounded(self):
        rows = hot_functions(captured_snapshot(), top=5)
        assert 0 < len(rows) <= 5
        assert rows == sorted(rows, key=lambda r: -r["self_s"])
        for row in rows:
            assert set(row) == {
                "function", "calls", "self_s", "cum_s", "share", "phase",
            }
            assert row["phase"] in PROFILE_PHASES
            assert 0.0 <= row["share"] <= 1.0

    def test_hot_functions_aggregates_across_phases(self):
        snap = captured_snapshot(calls_per_phase=3)
        burn_row = next(
            r for r in hot_functions(snap, top=50) if r["function"].endswith("burn")
        )
        # 3 in probe + 6 via outer in fit + 1 in overhead.
        assert burn_row["calls"] == 10


class TestCollapsedStacks:
    def test_line_format_and_determinism(self):
        snap = captured_snapshot()
        lines = collapsed_stacks(snap)
        assert lines and lines == sorted(lines)
        assert lines == collapsed_stacks(snap)
        for line in lines:
            stack, _, value = line.rpartition(" ")
            assert int(value) > 0
            assert stack.split(";")[0] in PROFILE_PHASES

    def test_values_conserve_profiled_time(self):
        # Heavy enough that integer-microsecond rounding is noise.
        with profiling() as prof:
            with profile_phase("fit"):
                for _ in range(5):
                    outer(50_000)
            with profile_phase("solve"):
                burn(100_000)
        snap = prof.snapshot()
        lines = collapsed_stacks(snap)
        total_us = sum(int(line.rpartition(" ")[2]) for line in lines)
        assert total_us == pytest.approx(snap["total_self_s"] * 1e6, rel=0.05)

    def test_caller_relationships_expand_to_stacks(self):
        snap = captured_snapshot()
        joined = "\n".join(collapsed_stacks(snap))
        assert ".outer;" in joined  # outer appears as a parent frame

    def test_write_collapsed_roundtrip(self, tmp_path):
        lines = collapsed_stacks(captured_snapshot())
        target = write_collapsed(tmp_path / "p.txt", lines)
        assert target.read_text(encoding="utf-8").splitlines() == lines

    def test_empty_snapshot_collapses_to_nothing(self):
        assert collapsed_stacks({"phases": {}}) == []


class TestFlamegraph:
    # The dashboard's self-containment bans; xmlns is allowed (required
    # for the SVG to open standalone).
    FORBIDDEN = ("<script", "<link", "<img", "url(", "@import")

    def test_svg_is_self_contained(self):
        svg = render_flamegraph_svg(captured_snapshot())
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        low = svg.lower()
        for banned in self.FORBIDDEN:
            assert banned not in low, banned

    def test_svg_has_dark_mode_and_phase_classes(self):
        svg = render_flamegraph_svg(captured_snapshot())
        assert "prefers-color-scheme:dark" in svg
        for phase in PROFILE_PHASES:
            assert f"rf-{phase}" in svg

    def test_svg_escapes_frame_names(self):
        svg = render_flamegraph_svg(captured_snapshot())
        # builtins like <built-in method ...> must be escaped in labels.
        assert "<built-in" not in svg

    def test_accepts_precollapsed_lines(self):
        lines = ["probe;a;b 1000", "fit;c 500"]
        svg = render_flamegraph_svg(lines)
        assert 'class="rf-probe"' in svg and 'class="rf-fit"' in svg

    def test_empty_profile_renders_placeholder(self):
        svg = render_flamegraph_svg([])
        assert "(empty profile)" in svg

    def test_write_flamegraph(self, tmp_path):
        target = write_flamegraph(
            tmp_path / "p.svg", captured_snapshot(), title="unit <test>"
        )
        text = target.read_text(encoding="utf-8")
        assert text.startswith("<svg")
        assert "unit &lt;test&gt;" in text
