"""Tests for repro.obs.events (run ids, spans, structured payloads)."""

import json
import logging

import pytest

from repro.obs.events import EventLog, current_run_id, new_run_id, push_run_id
from repro.util.logging import JsonFormatter


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def capture():
    handler = _Capture()
    logger = logging.getLogger("repro.obs.events")
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    yield handler
    logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


class TestRunIds:
    def test_seeded_ids_are_deterministic_and_hashed(self):
        a = new_run_id("config-blob")
        assert a == new_run_id("config-blob")
        assert a.startswith("run-")
        assert "config" not in a  # hashed, not truncated raw material

    def test_unseeded_ids_are_unique(self):
        assert new_run_id() != new_run_id()

    def test_push_scopes_the_ambient_id(self):
        assert current_run_id() is None
        with push_run_id("run-abc") as rid:
            assert rid == "run-abc"
            assert current_run_id() == "run-abc"
            with push_run_id("run-nested"):
                assert current_run_id() == "run-nested"
            assert current_run_id() == "run-abc"
        assert current_run_id() is None


class TestEventLog:
    def test_instant_payload(self, capture):
        EventLog().instant("thing.happened", size=3)
        (record,) = capture.records
        payload = record.repro_event
        assert payload["type"] == "instant"
        assert payload["name"] == "thing.happened"
        assert payload["size"] == 3
        assert "run_id" not in payload  # none pushed

    def test_span_emits_begin_and_end_with_duration(self, capture):
        with EventLog().span("work", n=2) as extra:
            extra["found"] = 7
        begin, end = [r.repro_event for r in capture.records]
        assert begin["type"] == "span_begin" and begin["n"] == 2
        assert end["type"] == "span_end"
        assert end["duration_s"] >= 0.0
        assert end["found"] == 7  # keys added inside the block

    def test_span_end_emitted_on_exception(self, capture):
        with pytest.raises(RuntimeError):
            with EventLog().span("work"):
                raise RuntimeError("boom")
        types = [r.repro_event["type"] for r in capture.records]
        assert types == ["span_begin", "span_end"]

    def test_run_id_attached_from_context(self, capture):
        with push_run_id("run-xyz"):
            EventLog().instant("correlated")
        assert capture.records[0].repro_event["run_id"] == "run-xyz"

    def test_json_formatter_merges_payload(self, capture):
        with push_run_id("run-fmt"):
            EventLog().instant("jsonable", count=1)
        line = JsonFormatter().format(capture.records[0])
        doc = json.loads(line)
        assert doc["name"] == "jsonable"
        assert doc["count"] == 1
        assert doc["run_id"] == "run-fmt"
        assert doc["logger"] == "repro.obs.events"
