"""Tests for repro.obs.events (run ids, spans, structured payloads)."""

import json
import logging
import logging.handlers

import pytest

from repro.obs.events import EventLog, current_run_id, new_run_id, push_run_id
from repro.util.logging import JsonFormatter


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def capture():
    handler = _Capture()
    logger = logging.getLogger("repro.obs.events")
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    yield handler
    logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)


class TestRunIds:
    def test_seeded_ids_are_deterministic_and_hashed(self):
        a = new_run_id("config-blob")
        assert a == new_run_id("config-blob")
        assert a.startswith("run-")
        assert "config" not in a  # hashed, not truncated raw material

    def test_unseeded_ids_are_unique(self):
        assert new_run_id() != new_run_id()

    def test_push_scopes_the_ambient_id(self):
        assert current_run_id() is None
        with push_run_id("run-abc") as rid:
            assert rid == "run-abc"
            assert current_run_id() == "run-abc"
            with push_run_id("run-nested"):
                assert current_run_id() == "run-nested"
            assert current_run_id() == "run-abc"
        assert current_run_id() is None


class TestEventLog:
    def test_instant_payload(self, capture):
        EventLog().instant("thing.happened", size=3)
        (record,) = capture.records
        payload = record.repro_event
        assert payload["type"] == "instant"
        assert payload["name"] == "thing.happened"
        assert payload["size"] == 3
        assert "run_id" not in payload  # none pushed

    def test_span_emits_begin_and_end_with_duration(self, capture):
        with EventLog().span("work", n=2) as extra:
            extra["found"] = 7
        begin, end = [r.repro_event for r in capture.records]
        assert begin["type"] == "span_begin" and begin["n"] == 2
        assert end["type"] == "span_end"
        assert end["duration_s"] >= 0.0
        assert end["found"] == 7  # keys added inside the block

    def test_span_end_emitted_on_exception(self, capture):
        with pytest.raises(RuntimeError):
            with EventLog().span("work"):
                raise RuntimeError("boom")
        types = [r.repro_event["type"] for r in capture.records]
        assert types == ["span_begin", "span_end"]

    def test_run_id_attached_from_context(self, capture):
        with push_run_id("run-xyz"):
            EventLog().instant("correlated")
        assert capture.records[0].repro_event["run_id"] == "run-xyz"

    def test_json_formatter_merges_payload(self, capture):
        with push_run_id("run-fmt"):
            EventLog().instant("jsonable", count=1)
        line = JsonFormatter().format(capture.records[0])
        doc = json.loads(line)
        assert doc["name"] == "jsonable"
        assert doc["count"] == 1
        assert doc["run_id"] == "run-fmt"
        assert doc["logger"] == "repro.obs.events"


class TestJsonlSink:
    def test_events_land_in_file_as_json_lines(self, tmp_path):
        from repro.obs.events import attach_jsonl_sink, detach_sink

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(str(path))
        try:
            EventLog("sink.test").instant("hello", n=7)
        finally:
            detach_sink(handler)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        hit = [l for l in lines if l.get("name") == "hello"]
        assert hit and hit[0]["n"] == 7
        assert hit[0]["logger"] == "repro.sink.test"

    def test_rotation_bounds_file_size(self, tmp_path):
        from repro.obs.events import attach_jsonl_sink, detach_sink

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(
            str(path), max_bytes=2048, backup_count=2
        )
        try:
            log = EventLog("sink.rotate")
            for i in range(200):
                log.instant("tick", i=i, pad="x" * 64)
        finally:
            detach_sink(handler)
        assert path.stat().st_size <= 4096  # one record of slack
        backups = sorted(tmp_path.glob("events.jsonl.*"))
        assert backups, "rotation must have produced backup files"
        assert len(backups) <= 2
        # every surviving line is still valid JSON
        for p in [path, *backups]:
            for line in p.read_text().splitlines():
                json.loads(line)

    def test_no_max_bytes_never_rotates(self, tmp_path):
        from repro.obs.events import attach_jsonl_sink, detach_sink

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(str(path))
        assert not isinstance(handler, logging.handlers.RotatingFileHandler)
        try:
            log = EventLog("sink.plain")
            for i in range(50):
                log.instant("tick", i=i, pad="x" * 64)
        finally:
            detach_sink(handler)
        assert list(tmp_path.glob("events.jsonl.*")) == []

    def test_invalid_arguments_rejected(self, tmp_path):
        from repro.errors import ConfigurationError
        from repro.obs.events import attach_jsonl_sink

        with pytest.raises(ConfigurationError):
            attach_jsonl_sink(str(tmp_path / "e.jsonl"), max_bytes=0)
        with pytest.raises(ConfigurationError):
            attach_jsonl_sink(str(tmp_path / "e.jsonl"), backup_count=-1)

    def test_record_exactly_at_max_bytes_rotates(self, tmp_path):
        """Boundary: a record that lands exactly on max_bytes rotates."""
        from repro.obs.events import attach_jsonl_sink, detach_sink

        probe = tmp_path / "probe.jsonl"
        handler = attach_jsonl_sink(str(probe))
        try:
            EventLog("sink.probe").instant("tick", i=0, pad="x" * 32)
        finally:
            detach_sink(handler)
        line_size = probe.stat().st_size

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(
            str(path), max_bytes=line_size, backup_count=3
        )
        try:
            log = EventLog("sink.probe")
            for i in range(3):
                log.instant("tick", i=i, pad="x" * 32)
        finally:
            detach_sink(handler)
        backups = sorted(tmp_path.glob("events.jsonl.*"))
        assert backups, "record at the size limit must trigger rotation"
        # no file ever exceeds the cap by more than one record, and
        # every line in every generation is still complete JSON
        for p in [path, *backups]:
            assert p.stat().st_size <= 2 * line_size
            for line in p.read_text().splitlines():
                json.loads(line)

    def test_backup_count_zero_truncates_in_place(self, tmp_path):
        """backup_count=0: rotation truncates, never keeps generations."""
        from repro.obs.events import attach_jsonl_sink, detach_sink

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(
            str(path), max_bytes=1024, backup_count=0
        )
        try:
            log = EventLog("sink.zero")
            for i in range(100):
                log.instant("tick", i=i, pad="x" * 64)
        finally:
            detach_sink(handler)
        assert list(tmp_path.glob("events.jsonl.*")) == []
        assert path.stat().st_size <= 2048  # bounded despite 100 records
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_concurrent_writers_never_interleave(self, tmp_path):
        """Threads sharing one rotating sink produce only whole lines."""
        import threading

        from repro.obs.events import attach_jsonl_sink, detach_sink

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(
            str(path), max_bytes=4096, backup_count=4
        )
        try:
            def worker(wid):
                log = EventLog(f"sink.w{wid}")
                for i in range(50):
                    log.instant("tick", worker=wid, i=i, pad="y" * 40)

            threads = [
                threading.Thread(target=worker, args=(w,)) for w in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            detach_sink(handler)
        seen = 0
        for p in [path, *tmp_path.glob("events.jsonl.*")]:
            for line in p.read_text().splitlines():
                doc = json.loads(line)  # a torn write would fail here
                if doc.get("name") == "tick":
                    seen += 1
        # rotation may discard the oldest generations, never corrupt
        # one: at least the retained capacity's worth of whole records
        assert seen >= 40

    def test_detach_closes_and_removes(self, tmp_path):
        import logging as _logging

        from repro.obs.events import attach_jsonl_sink, detach_sink
        from repro.util.logging import get_logger

        path = tmp_path / "events.jsonl"
        handler = attach_jsonl_sink(str(path))
        root = get_logger("repro")
        assert handler in root.handlers
        detach_sink(handler)
        assert handler not in root.handlers
