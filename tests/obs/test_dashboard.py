"""Tests for repro.obs.dashboard (the self-contained HTML dashboard)."""

import re

import pytest

from repro.experiments.runner import PolicyOutcome, SweepPoint
from repro.obs.dashboard import (
    DashboardData,
    collect_dashboard_data,
    render_dashboard,
    write_dashboard,
)
from repro.obs.history import HistoryStore, bench_entry
from repro.obs.regress import Anomaly
from repro.sim.trace import ExecutionTrace, TaskRecord
from repro.solver.diagnostics import ConvergenceReport

SECTIONS = (
    "Policy comparison",
    "Benchmark trend",
    "Solver convergence",
    "Execution timeline",
    "Critical path",
    "CPU profile",
    "Anomalies",
)


def make_point():
    outcomes = {}
    for name, base in (("plb-hec", 1.0), ("greedy", 1.4), ("static", 1.2)):
        outcomes[name] = PolicyOutcome(
            policy=name,
            makespans=[base, base * 1.02],
            idle_fractions=[{"A.cpu": 0.05, "A.gpu0": 0.10}] * 2,
            distributions=[{}] * 2,
            overheads=[0.01] * 2,
            rebalances=[2, 2],
        )
    return SweepPoint(
        app_name="matmul", size=4096, num_machines=1, outcomes=outcomes
    )


def make_trace():
    tr = ExecutionTrace(["A.cpu", "A.gpu0"])
    tr.add_record(
        TaskRecord(
            worker_id="A.cpu", units=8, dispatch_time=0.0, transfer_time=0.0,
            exec_time=0.4, start_time=0.0, end_time=0.4, phase="probe",
        )
    )
    tr.add_record(
        TaskRecord(
            worker_id="A.gpu0", units=100, dispatch_time=0.4, transfer_time=0.0,
            exec_time=0.6, start_time=0.4, end_time=1.0, phase="exec",
        )
    )
    tr.record_rebalance(0.5)
    tr.finalize(1.0)
    return tr


def make_data(**overrides):
    data = DashboardData(
        config={"app": "matmul", "size": 4096, "machines": 1,
                "seed": 0, "noise": 0.005, "replications": 2},
        generated_at="2026-01-01 00:00:00",
        host={"platform": "test-os", "python": "3.12.0", "cpu_count": 8},
        git_rev="abc1234",
        point=make_point(),
        trace=make_trace(),
        convergence=ConvergenceReport(
            iterations=12, converged=True, final_kkt_error=3e-9,
            final_mu=1e-9, feasibility_improved=True, barrier_decreased=True,
            mean_step_length=0.85, restorations_suspected=False,
        ),
        convergence_history=[
            {"iter": i, "kkt_error": 10.0 ** -i} for i in range(6)
        ],
        anomalies=[],
    )
    for key, value in overrides.items():
        setattr(data, key, value)
    return data


class TestRenderDashboard:
    def test_all_sections_present(self):
        html = render_dashboard(make_data())
        for section in SECTIONS:
            assert section in html

    def test_single_self_contained_document(self):
        html = render_dashboard(make_data())
        assert html.startswith("<!DOCTYPE html>")
        # No external requests of any kind: no scripts, stylesheets,
        # images, fonts or CSS url() loads.
        assert "<script" not in html
        assert "<link" not in html
        assert "<img" not in html
        assert "url(" not in html
        assert "@import" not in html
        # The only protocol occurrences are SVG xmlns identifiers.
        for m in re.finditer(r"https?://", html):
            context = html[max(0, m.start() - 30):m.start()]
            assert "xmlns" in context

    def test_policy_bars_with_value_labels_and_tooltips(self):
        html = render_dashboard(make_data())
        assert html.count("<svg") >= 4
        assert "plb-hec" in html and "greedy" in html
        assert 'class="value-label"' in html
        assert "<title>" in html

    def test_speedup_hero(self):
        html = render_dashboard(make_data())
        assert "1.40" in html and "speedup" in html

    def test_dark_mode_palette_selected(self):
        html = render_dashboard(make_data())
        assert "prefers-color-scheme: dark" in html
        assert "#2a78d6" in html  # light series-1
        assert "#3987e5" in html  # dark series-1 step

    def test_trend_section_with_entries(self):
        entries = [
            bench_entry({
                "timings_s": {"serial": 1.0 + 0.01 * i, "parallel": 0.5},
                "host": {"platform": "t", "python": "3", "cpu_count": 1},
                "meta": {"grid": {}, "jobs": 1},
            })
            for i in range(3)
        ]
        html = render_dashboard(make_data(bench_trend=entries))
        assert "3 recorded" in html
        assert "history entry" in html

    def test_trend_section_empty_placeholder(self):
        html = render_dashboard(make_data(bench_trend=[]))
        assert "no history yet" in html

    def test_convergence_tiles(self):
        html = render_dashboard(make_data())
        assert "interior-point iteration" in html
        assert "3.00e-09" in html

    def test_gantt_embedded(self):
        html = render_dashboard(make_data())
        assert "A.gpu0" in html
        assert "rebalance at" in html

    def test_anomaly_findings_rendered_with_badge(self):
        anomaly = Anomaly(
            name="load-imbalance", severity="critical",
            message="idle spread 40%", value=0.4, threshold=0.25,
        )
        html = render_dashboard(make_data(anomalies=[anomaly]))
        assert "load-imbalance" in html
        assert 'badge critical' in html

    def test_no_anomalies_all_clear(self):
        html = render_dashboard(make_data(anomalies=[]))
        assert "no anomalies detected" in html

    def test_missing_pieces_degrade_to_placeholders(self):
        html = render_dashboard(
            make_data(point=None, trace=None, convergence=None)
        )
        for section in SECTIONS:
            assert section in html
        assert "no sweep data" in html
        assert "no trace" in html
        assert "no recorded solve" in html

    def test_legend_present_for_multi_series(self):
        html = render_dashboard(make_data())
        assert 'class="legend"' in html

    def test_table_views_present(self):
        # Relief rule for sub-contrast light-mode slots: the numbers are
        # always available as text.
        html = render_dashboard(make_data())
        assert "table view" in html
        assert "<table>" in html


class TestWriteDashboard:
    def test_writes_single_file(self, tmp_path):
        target = tmp_path / "dash.html"
        path = write_dashboard(target, make_data())
        assert path == target
        assert target.read_text().startswith("<!DOCTYPE html>")
        assert list(tmp_path.iterdir()) == [target]  # no sidecar files


class TestCollectDashboardData:
    def test_collects_every_section_input(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry({
            "timings_s": {"serial": 1.0},
            "meta": {"grid": {}, "jobs": 1},
        }))
        data = collect_dashboard_data(
            app="matmul", size=2048, machines=1, replications=1,
            jobs=1, history=store,
        )
        assert data.point is not None and "plb-hec" in data.point.outcomes
        assert data.trace is not None and data.trace.makespan > 0
        assert data.critpath and data.critpath["path"]
        assert data.convergence is not None and data.convergence.iterations > 0
        assert data.convergence_history
        assert len(data.bench_trend) == 1
        assert data.config["size"] == 2048
        html = render_dashboard(data)
        for section in SECTIONS:
            assert section in html


def make_profile_snapshot():
    from repro.obs.profiler import profile_phase, profiling

    def burn(n=500):
        acc = 0
        for i in range(n):
            acc += i * i
        return acc

    with profiling() as prof:
        with profile_phase("fit"):
            burn()
        with profile_phase("solve"):
            burn()
    return prof.snapshot()


class TestProfileSection:
    def test_empty_profile_placeholder(self):
        html = render_dashboard(make_data())
        assert "CPU profile" in html
        assert "no profile captured" in html

    def test_profile_tiles_and_table(self):
        html = render_dashboard(make_data(profile=make_profile_snapshot()))
        assert "no profile captured" not in html
        assert "fit" in html and "solve" in html
        assert "ms self" in html  # per-phase tiles
        assert "burn" in html  # hot-function table row

    def test_flamegraph_embedded_and_self_contained(self):
        html = render_dashboard(make_data(profile=make_profile_snapshot()))
        assert "repro-flame" in html
        assert "host CPU time by phase and call stack" in html
        # The embedded SVG must not break the document's bans.
        assert "<script" not in html
        assert "<img" not in html
        assert "url(" not in html

    def test_collect_populates_profile(self, tmp_path):
        data = collect_dashboard_data(
            app="matmul", size=2048, machines=1, replications=1,
            jobs=1, history=HistoryStore(tmp_path),
        )
        assert data.profile.get("phases")
        from repro.obs.profiler import phase_breakdown

        breakdown = phase_breakdown(data.profile)
        assert sum(d["share"] for d in breakdown.values()) == pytest.approx(1.0)
        html = render_dashboard(data)
        assert "no profile captured" not in html


def make_ledger_dict():
    from repro.obs.ledger import DecisionLedger

    ledger = DecisionLedger("run-dash")
    ledger.open_decision(
        trigger="probe-round", t=0.0, phase="modeling",
        allocation={"A.cpu": 8, "A.gpu0": 8},
        solver={"method": "probe"},
    )
    did = ledger.open_decision(
        trigger="selection", t=0.5, phase="execution",
        allocation={"A.cpu": 10, "A.gpu0": 90},
        predicted={"A.cpu": 1.0, "A.gpu0": 1.0},
        predicted_time=1.0,
        solver={"method": "ipm", "iterations": 11, "kkt_error": 2e-10},
    )
    fb = ledger.open_decision(
        trigger="rebalance", t=1.5, phase="execution",
        allocation={"A.cpu": 12, "A.gpu0": 88},
        predicted={"A.cpu": 1.1, "A.gpu0": 0.9},
        predicted_time=1.1,
        solver={
            "method": "fallback-last-good", "fallback_stage": "last-good",
            "converged": False, "iterations": 0,
        },
    )
    for decision in (did, fb):
        ledger.attribute(
            decision, "A.cpu", units=10, predicted_s=1.0, observed_s=1.1
        )
        ledger.attribute(
            decision, "A.gpu0", units=90, predicted_s=1.0, observed_s=0.8
        )
    return ledger.to_dict()


class TestDecisionsSection:
    def test_section_title_present(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "Scheduler decisions" in html

    def test_empty_ledger_placeholder(self):
        html = render_dashboard(make_data())
        assert "Scheduler decisions" in html
        assert "no decision ledger" in html

    def test_tiles_report_coverage_and_fallbacks(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "blocks attributed" in html
        assert "100%" in html  # 4/4 blocks attributed
        assert "fallback decisions" in html
        assert "last-good" in html

    def test_decision_table_with_fallback_badge(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "d0001" in html and "d0002" in html
        assert re.search(r'class="badge warning">\s*fallback: last-good', html)

    def test_calibration_scatter_and_drift_sparkline(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "perfect prediction" in html  # the y=x diagonal
        assert "scored block (completion order)" in html

    def test_calibration_table_per_device(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "Prediction calibration" in html
        assert "A.cpu" in html and "A.gpu0" in html

    def test_still_self_contained(self):
        html = render_dashboard(make_data(ledger=make_ledger_dict()))
        assert "<script" not in html and "<img" not in html
        # the only protocol occurrences are SVG xmlns identifiers
        for m in re.finditer(r"https?://", html):
            assert "xmlns" in html[max(0, m.start() - 30):m.start()]


class TestCritpathSection:
    def analyzed(self):
        from repro.obs.critpath import analyze_trace

        return make_data(critpath=analyze_trace(make_trace()))

    def test_empty_state_points_at_repro_why(self):
        html = render_dashboard(make_data())
        assert "Critical path" in html
        assert "repro why" in html

    def test_attribution_bars_and_headroom_tiles(self):
        html = render_dashboard(self.analyzed())
        assert "Critical path" in html
        assert "compute" in html
        assert "makespan" in html
        assert "zero transfer" in html
        assert "zero scheduler" in html
        assert "perfect balance" in html

    def test_bottleneck_device_starred(self):
        html = render_dashboard(self.analyzed())
        assert "★" in html  # the bottleneck row is starred
        assert "A.gpu0" in html

    def test_still_self_contained(self):
        html = render_dashboard(self.analyzed())
        for banned in ("<script", "<link", "<img", "url(", "@import"):
            assert banned not in html


class TestResilienceAttributionColumns:
    def scorecard(self):
        return {
            "total_runs": 2,
            "survived_runs": 2,
            "total_violations": 0,
            "all_invariants_ok": True,
            "policies": {
                "plb-hec": {
                    "runs": 2, "survived": 2, "survival_rate": 1.0,
                    "mean_degradation": 1.1, "max_degradation": 1.2,
                    "mean_recovery_lag": 0.01, "violations": 0,
                    "mean_attribution": {
                        "compute": 0.7, "transfer": 0.05, "idle": 0.1,
                        "solver": 0.05, "retries": 0.0,
                        "fault_recovery": 0.06, "rework": 0.04,
                    },
                },
                "greedy": {
                    "runs": 2, "survived": 2, "survival_rate": 1.0,
                    "mean_degradation": 1.3, "max_degradation": 1.5,
                    "mean_recovery_lag": None, "violations": 0,
                    "mean_attribution": {},
                },
            },
        }

    def test_attribution_columns_rendered(self):
        html = render_dashboard(make_data(resilience=self.scorecard()))
        assert "fault recovery" in html
        assert "rework" in html
        assert "6.0%" in html  # plb-hec fault_recovery share
        assert "4.0%" in html  # plb-hec rework share

    def test_missing_attribution_degrades_to_dash(self):
        html = render_dashboard(make_data(resilience=self.scorecard()))
        assert "&#8212;" in html or "—" in html  # greedy has no shares
