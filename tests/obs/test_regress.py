"""Tests for repro.obs.regress (the statistical perf-regression gate).

The verdict matrix the satellite task asks for — each synthetic
trajectory maps to a documented verdict and exit code:

==========================  ==================  =========
trajectory                  verdict             exit code
==========================  ==================  =========
clear regression (2x)       regressed           2
clear improvement (2x)      improved            0
pure noise                  no-change           0
insufficient samples        insufficient-data   0
mismatched host             insufficient-data   0
==========================  ==================  =========
"""

import logging

import pytest

from repro.obs.history import HistoryStore, bench_entry, fingerprint_hash
from repro.obs.regress import (
    EXIT_CODES,
    VERDICTS,
    Anomaly,
    BenchCheck,
    check_bench_report,
    compare_samples,
    detect_anomalies,
    detect_report_anomalies,
    mann_whitney_u,
    overall_verdict,
)


def report_with(laps, host=None, jobs=2):
    return {
        "timings_s": dict(laps),
        "host": host or {"platform": "host-a", "python": "3.12.0", "cpu_count": 8},
        "meta": {"grid": {"app": "matmul", "sizes": [4096]}, "jobs": jobs},
    }


def seeded_store(tmp_path, lap_values, host=None):
    """A store holding one bench entry per value in ``lap_values``."""
    store = HistoryStore(tmp_path / "hist")
    for value in lap_values:
        store.append(bench_entry(report_with({"serial": value}, host=host)))
    return store


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        _, p = mann_whitney_u([1.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0])
        assert p == 1.0

    def test_separated_samples_significant(self):
        a = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0]
        b = [2.0, 2.01, 1.99, 2.02, 1.98, 2.0]
        _, p = mann_whitney_u(a, b)
        assert p < 0.01

    def test_symmetry(self):
        a, b = [1.0, 1.1, 1.2, 1.3], [1.4, 1.5, 1.6, 1.7]
        _, p_ab = mann_whitney_u(a, b)
        _, p_ba = mann_whitney_u(b, a)
        assert p_ab == pytest.approx(p_ba)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestCompareSamples:
    def test_clear_regression(self):
        c = compare_samples([1.0, 1.02, 0.98], [2.0], metric="serial")
        assert c.verdict == "regressed"
        assert c.rel_change == pytest.approx(1.0, abs=0.05)

    def test_clear_improvement(self):
        c = compare_samples([2.0, 2.02, 1.98], [1.0])
        assert c.verdict == "improved"

    def test_pure_noise_within_spread(self):
        c = compare_samples([1.0, 1.1, 0.9], [1.05])
        assert c.verdict == "no-change"

    def test_insufficient_baseline(self):
        c = compare_samples([1.0], [2.0])
        assert c.verdict == "insufficient-data"

    def test_no_current_samples(self):
        c = compare_samples([1.0, 1.1], [])
        assert c.verdict == "insufficient-data"

    def test_nonpositive_baseline(self):
        c = compare_samples([0.0, 0.0], [1.0])
        assert c.verdict == "insufficient-data"

    def test_mann_whitney_path_used_with_enough_samples(self):
        base = [1.0, 1.01, 0.99, 1.02, 0.98]
        cur = [1.6, 1.61, 1.59, 1.62]
        c = compare_samples(base, cur)
        assert c.p_value is not None
        assert c.verdict == "regressed"

    def test_small_shift_with_enough_samples_not_practical(self):
        # Statistically significant but below the practical threshold.
        base = [1.0, 1.001, 0.999, 1.002, 0.998]
        cur = [1.05, 1.051, 1.049, 1.052]
        c = compare_samples(base, cur, rel_threshold=0.30)
        assert c.verdict == "no-change"

    def test_noisy_baseline_guards_threshold_rule(self):
        # 40% shift, but the two baseline points are 50% apart: the
        # 1.5x-spread guard must refuse to call it.
        c = compare_samples([1.0, 1.5], [1.7], rel_threshold=0.30)
        assert c.verdict == "no-change"


class TestOverallVerdict:
    def test_regression_wins(self):
        cs = [
            compare_samples([1.0, 1.0], [1.0]),
            compare_samples([1.0, 1.0], [3.0]),
        ]
        assert overall_verdict(cs) == "regressed"

    def test_empty_is_insufficient(self):
        assert overall_verdict([]) == "insufficient-data"

    def test_exit_codes_documented_for_every_verdict(self):
        assert set(EXIT_CODES) == set(VERDICTS)
        assert EXIT_CODES["regressed"] != 0
        assert EXIT_CODES["improved"] == 0
        assert EXIT_CODES["no-change"] == 0
        assert EXIT_CODES["insufficient-data"] == 0


class TestCheckBenchReport:
    def test_clear_regression_exits_nonzero(self, tmp_path):
        store = seeded_store(tmp_path, [1.0, 1.02, 0.98])
        check = check_bench_report(report_with({"serial": 2.0}), store)
        assert check.verdict == "regressed"
        assert check.exit_code == 2

    def test_clear_improvement_exits_zero(self, tmp_path):
        store = seeded_store(tmp_path, [2.0, 2.02, 1.98])
        check = check_bench_report(report_with({"serial": 0.8}), store)
        assert check.verdict == "improved"
        assert check.exit_code == 0

    def test_pure_noise_is_no_change(self, tmp_path):
        store = seeded_store(tmp_path, [1.0, 1.1, 0.9])
        check = check_bench_report(report_with({"serial": 1.05}), store)
        assert check.verdict == "no-change"
        assert check.exit_code == 0

    def test_insufficient_samples(self, tmp_path):
        store = seeded_store(tmp_path, [1.0])
        check = check_bench_report(report_with({"serial": 9.0}), store)
        assert check.verdict == "insufficient-data"
        assert check.exit_code == 0

    def test_empty_store_is_insufficient(self, tmp_path):
        store = HistoryStore(tmp_path / "empty")
        check = check_bench_report(report_with({"serial": 1.0}), store)
        assert check.verdict == "insufficient-data"
        assert check.exit_code == 0

    def test_mismatched_host_refuses_comparison(self, tmp_path):
        other_host = {"platform": "host-b", "python": "3.11.0", "cpu_count": 2}
        store = seeded_store(tmp_path, [1.0, 1.0, 1.0], host=other_host)
        check = check_bench_report(report_with({"serial": 9.0}), store)
        assert check.verdict == "insufficient-data"
        assert check.exit_code == 0
        assert "cross-host" in check.reason
        assert all(c.verdict == "insufficient-data" for c in check.comparisons)
        assert all("host fingerprint" in c.reason for c in check.comparisons)

    def test_different_jobs_do_not_pool(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for value in (1.0, 1.0, 1.0):
            store.append(bench_entry(report_with({"serial": value}, jobs=8)))
        check = check_bench_report(report_with({"serial": 9.0}, jobs=1), store)
        assert check.verdict == "insufficient-data"

    def test_micro_laps_never_gate(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for value in (0.002, 0.002):
            store.append(bench_entry(report_with({"serial": value})))
        check = check_bench_report(report_with({"serial": 0.02}), store)
        assert check.verdict == "no-change"
        assert "measurement floor" in check.comparisons[0].reason

    def test_regression_emits_structured_event(self, tmp_path, caplog):
        store = seeded_store(tmp_path, [1.0, 1.02, 0.98])
        with caplog.at_level(logging.WARNING, logger="repro.obs.regress"):
            check_bench_report(report_with({"serial": 2.0}), store)
        assert any("regression.detected" in r.getMessage() for r in caplog.records)

    def test_is_benchcheck(self, tmp_path):
        store = seeded_store(tmp_path, [1.0, 1.0])
        assert isinstance(
            check_bench_report(report_with({"serial": 1.0}), store), BenchCheck
        )


class TestAnomalyDetectors:
    def test_all_clear(self):
        findings = detect_anomalies(
            phase_summary={"probe": {"unit_share": 0.05}},
            metrics={"gauges": {"plbhec.r2{device=a}": 0.95}},
            idle_fractions={"a": 0.05, "b": 0.07},
            emit=False,
        )
        assert findings == []

    def test_probe_share(self):
        findings = detect_anomalies(
            phase_summary={"probe": {"unit_share": 0.35}}, emit=False
        )
        assert [f.name for f in findings] == ["probe-share"]
        assert findings[0].severity == "warning"

    def test_low_r2(self):
        findings = detect_anomalies(
            metrics={
                "gauges": {
                    "plbhec.r2{device=a}": 0.4,
                    "plbhec.r2{device=b}": 0.95,
                }
            },
            emit=False,
        )
        assert [f.name for f in findings] == ["low-r2"]
        assert findings[0].context["devices"] == {"a": 0.4}

    def test_load_imbalance_is_critical(self):
        findings = detect_anomalies(
            idle_fractions={"a": 0.05, "b": 0.60}, emit=False
        )
        assert [f.name for f in findings] == ["load-imbalance"]
        assert findings[0].severity == "critical"

    def test_ipm_restoration_rate(self):
        findings = detect_anomalies(
            metrics={"counters": {"ipm.solves": 2.0, "ipm.restorations": 5.0}},
            emit=False,
        )
        assert [f.name for f in findings] == ["ipm-restorations"]

    def test_emits_structured_warnings(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.regress"):
            detect_anomalies(idle_fractions={"a": 0.0, "b": 0.9})
        assert any("anomaly.load-imbalance" in r.getMessage() for r in caplog.records)

    def test_report_wrapper(self):
        findings = detect_report_anomalies(
            {"phase_summary": {"probe": {"unit_share": 0.5}}, "metrics": {}},
            emit=False,
        )
        assert findings and isinstance(findings[0], Anomaly)


def profiled_report(laps, host=None, hot=None):
    report = report_with(laps, host=host)
    report["meta"]["profiled"] = True
    report["meta"]["hot_functions"] = hot or [
        {"function": "repro.solver.ipm._solve_impl", "share": 0.30},
        {"function": "repro.modeling.least_squares.fit_basis_model", "share": 0.25},
    ]
    return report


class TestProfiledLapExclusion:
    """Satellite regress test: a profiled lap must never gate."""

    def test_profiled_report_never_gates(self, tmp_path):
        # A 50x slowdown that would gate hard unprofiled...
        store = seeded_store(tmp_path, [1.0, 1.02, 0.98])
        check = check_bench_report(profiled_report({"serial": 50.0}), store)
        # ...is neutral under the profiler: tracer overhead is not
        # comparable to unprofiled baselines.
        assert check.verdict == "insufficient-data"
        assert check.exit_code == 0
        assert "--profile" in check.reason
        assert all(c.verdict == "insufficient-data" for c in check.comparisons)
        assert all("profiler" in c.reason for c in check.comparisons)

    def test_profiled_baselines_never_used(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        for value in (1.0, 1.0, 1.0):
            store.append(bench_entry(profiled_report({"serial": value})))
        check = check_bench_report(report_with({"serial": 9.0}), store)
        assert check.verdict == "insufficient-data"
        assert check.exit_code == 0

    def test_mixed_history_gates_on_unprofiled_only(self, tmp_path):
        store = seeded_store(tmp_path, [1.0, 1.02, 0.98])
        # Interleaved profiled entries are slower (tracer overhead); they
        # must not contaminate the unprofiled baseline.
        for value in (1.6, 1.7):
            store.append(bench_entry(profiled_report({"serial": value})))
        check = check_bench_report(report_with({"serial": 1.01}), store)
        assert check.verdict == "no-change"

    def test_profiled_share_same_config_hash(self, tmp_path):
        # The profiled flag is deliberately outside the config hash —
        # that is what makes the exclusion above observable.
        plain = bench_entry(report_with({"serial": 1.0}))
        profiled = bench_entry(profiled_report({"serial": 1.0}))
        assert plain["config_hash"] == profiled["config_hash"]


class TestHotPathDrift:
    BASELINE = [
        {"repro.solver.ipm._solve_impl": 0.30, "f.g": 0.10},
        {"repro.solver.ipm._solve_impl": 0.32, "f.g": 0.11},
        {"repro.solver.ipm._solve_impl": 0.28, "f.g": 0.09},
    ]

    def test_matched_history_stays_clean(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [
            {"function": "repro.solver.ipm._solve_impl", "share": 0.31},
            {"function": "f.g", "share": 0.105},
        ]
        assert detect_hot_path_drift(current, self.BASELINE, emit=False) == []

    def test_synthetic_regression_flagged(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "repro.solver.ipm._solve_impl", "share": 0.55}]
        findings = detect_hot_path_drift(current, self.BASELINE, emit=False)
        assert len(findings) == 1
        f = findings[0]
        assert f.name == "hot-path-drift"
        assert f.severity == "warning"
        assert f.value == pytest.approx(25.0)  # 30% -> 55% = +25pp
        assert f.context["function"] == "repro.solver.ipm._solve_impl"
        assert "grew" in f.message

    def test_shrinking_hot_path_also_flagged(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "repro.solver.ipm._solve_impl", "share": 0.05}]
        findings = detect_hot_path_drift(current, self.BASELINE, emit=False)
        assert findings and "shrank" in findings[0].message

    def test_new_hot_function_counts_from_zero(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "brand.new_hotspot", "share": 0.20}]
        findings = detect_hot_path_drift(current, self.BASELINE, emit=False)
        assert findings[0].value == pytest.approx(20.0)

    def test_below_min_samples_stays_neutral(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "repro.solver.ipm._solve_impl", "share": 0.99}]
        assert detect_hot_path_drift(current, self.BASELINE[:1], emit=False) == []

    def test_drift_threshold_configurable(self):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "repro.solver.ipm._solve_impl", "share": 0.33}]
        assert detect_hot_path_drift(current, self.BASELINE, emit=False) == []
        findings = detect_hot_path_drift(
            current, self.BASELINE, drift_pp=1.0, emit=False
        )
        assert len(findings) == 1

    def test_emits_structured_event(self, caplog):
        from repro.obs.regress import detect_hot_path_drift

        current = [{"function": "repro.solver.ipm._solve_impl", "share": 0.80}]
        with caplog.at_level(logging.WARNING, logger="repro.obs.regress"):
            detect_hot_path_drift(current, self.BASELINE)
        assert any(
            "anomaly.hot-path-drift" in r.getMessage() for r in caplog.records
        )

    def test_end_to_end_through_history_store(self, tmp_path):
        """Acceptance: drift flags a synthetic regression, clean stays clean."""
        from repro.obs.regress import detect_hot_path_drift

        store = HistoryStore(tmp_path / "hist")
        for share in (0.30, 0.31, 0.29):
            store.append(
                bench_entry(
                    profiled_report(
                        {"serial": 1.0},
                        hot=[{"function": "repro.solver.ipm._solve_impl",
                              "share": share}],
                    )
                )
            )
        entry = bench_entry(profiled_report({"serial": 1.0}))
        shares = store.hot_function_shares(config_hash=entry["config_hash"])
        assert len(shares) == 3
        clean = [{"function": "repro.solver.ipm._solve_impl", "share": 0.30}]
        assert detect_hot_path_drift(clean, shares, emit=False) == []
        regressed = [{"function": "repro.solver.ipm._solve_impl", "share": 0.60}]
        findings = detect_hot_path_drift(regressed, shares, emit=False)
        assert len(findings) == 1
        assert findings[0].value == pytest.approx(30.0)


class TestCalibrationAnomalies:
    def test_bias_beyond_threshold_flagged(self):
        findings = detect_anomalies(
            metrics={
                "gauges": {
                    "plbhec.calibration.bias{device=a}": 0.30,
                    "plbhec.calibration.bias{device=b}": -0.02,
                }
            },
            emit=False,
        )
        assert [f.name for f in findings] == ["calibration-bias"]
        assert findings[0].severity == "warning"
        assert findings[0].context["devices"] == {"a": 0.30}
        assert "over-predict" in findings[0].message

    def test_negative_bias_magnitude_counts(self):
        findings = detect_anomalies(
            metrics={"gauges": {"plbhec.calibration.bias{device=a}": -0.40}},
            emit=False,
        )
        assert [f.name for f in findings] == ["calibration-bias"]
        assert "under-predict" in findings[0].message

    def test_mape_beyond_threshold_flagged(self):
        findings = detect_anomalies(
            metrics={"gauges": {"plbhec.calibration.mape{device=a}": 0.50}},
            emit=False,
        )
        assert [f.name for f in findings] == ["calibration-mape"]
        assert findings[0].context["devices"] == {"a": 0.50}

    def test_calibrated_run_is_clear(self):
        findings = detect_anomalies(
            metrics={
                "gauges": {
                    "plbhec.calibration.bias{device=a}": 0.05,
                    "plbhec.calibration.mape{device=a}": 0.10,
                }
            },
            emit=False,
        )
        assert findings == []

    def test_thresholds_adjustable(self):
        findings = detect_anomalies(
            metrics={"gauges": {"plbhec.calibration.mape{device=a}": 0.10}},
            calibration_mape_threshold=0.05,
            emit=False,
        )
        assert [f.name for f in findings] == ["calibration-mape"]

    def test_defaults_are_the_issue_thresholds(self):
        from repro.obs.regress import (
            CALIBRATION_BIAS_THRESHOLD,
            CALIBRATION_MAPE_THRESHOLD,
        )

        assert CALIBRATION_BIAS_THRESHOLD == 0.15
        assert CALIBRATION_MAPE_THRESHOLD == 0.25


def critpath_analysis(makespan=10.0, **share_overrides):
    shares = {
        "compute": 0.85, "transfer": 0.05, "idle": 0.05, "solver": 0.05,
        "retries": 0.0, "fault_recovery": 0.0, "rework": 0.0,
    }
    shares.update(share_overrides)
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    return {
        "makespan": makespan,
        "categories": {k: v * makespan for k, v in shares.items()},
    }


class TestCritpathAnomalies:
    def test_healthy_attribution_is_clear(self):
        from repro.obs.regress import detect_critpath_anomalies

        assert detect_critpath_anomalies(critpath_analysis(), emit=False) == []

    def test_idle_share_flagged(self):
        from repro.obs.regress import detect_critpath_anomalies

        findings = detect_critpath_anomalies(
            critpath_analysis(idle=0.30, compute=0.60), emit=False
        )
        assert [f.name for f in findings] == ["critpath.idle-share"]
        assert findings[0].severity == "warning"
        assert findings[0].value == pytest.approx(0.30)
        assert findings[0].context["categories"]["idle"] == pytest.approx(0.30)

    def test_solver_share_flagged(self):
        from repro.obs.regress import detect_critpath_anomalies

        findings = detect_critpath_anomalies(
            critpath_analysis(solver=0.30, compute=0.60), emit=False
        )
        assert [f.name for f in findings] == ["critpath.solver-share"]

    def test_thresholds_configurable(self):
        from repro.obs.regress import detect_critpath_anomalies

        findings = detect_critpath_anomalies(
            critpath_analysis(idle=0.30, compute=0.60),
            idle_share_threshold=0.50, emit=False,
        )
        assert findings == []

    def test_zero_makespan_is_neutral(self):
        from repro.obs.regress import detect_critpath_anomalies

        assert detect_critpath_anomalies({"makespan": 0.0}, emit=False) == []

    def test_drift_vs_baseline_median(self):
        from repro.obs.regress import detect_critpath_anomalies

        baseline = [
            {"compute": 0.90, "transfer": 0.05, "idle": 0.02, "solver": 0.03},
            {"compute": 0.88, "transfer": 0.06, "idle": 0.03, "solver": 0.03},
        ]
        findings = detect_critpath_anomalies(
            critpath_analysis(compute=0.75, transfer=0.15),
            baseline_shares=baseline, emit=False,
        )
        drifted = {f.context["category"] for f in findings
                   if f.name == "critpath.drift"}
        assert "compute" in drifted and "transfer" in drifted
        assert "solver" not in drifted

    def test_below_min_samples_no_drift(self):
        from repro.obs.regress import detect_critpath_anomalies

        findings = detect_critpath_anomalies(
            critpath_analysis(compute=0.60, idle=0.05, transfer=0.30),
            baseline_shares=[{"compute": 0.90}], emit=False,
        )
        assert not [f for f in findings if f.name == "critpath.drift"]

    def test_emits_structured_warnings(self, caplog):
        from repro.obs.regress import detect_critpath_anomalies

        with caplog.at_level(logging.WARNING, logger="repro.obs.regress"):
            detect_critpath_anomalies(
                critpath_analysis(idle=0.30, compute=0.60)
            )
        assert any("anomaly.critpath.idle-share" in r.getMessage()
                   for r in caplog.records)
