"""Tests for repro.obs.metrics (registry, snapshots, cardinality)."""

import json
import re
import threading

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    reset_registry,
    set_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 2.5)
        assert reg.snapshot()["counters"]["x"] == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.inc("x", -1.0)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("x", device="a")


class TestGauge:
    def test_set_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", -4.0)
        assert reg.snapshot()["gauges"]["g"] == -4.0

    def test_add_shifts(self):
        reg = MetricsRegistry()
        reg.gauge("g").add(2.0)
        reg.gauge("g").add(-0.5)
        assert reg.snapshot()["gauges"]["g"] == 1.5


class TestHistogram:
    def test_percentiles_interpolate(self):
        reg = MetricsRegistry()
        for v in range(1, 101):  # 1..100
            reg.observe("h", float(v))
        h = reg.histogram("h")
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0
        assert h.percentile(50.0) == pytest.approx(50.5)
        assert h.percentile(90.0) == pytest.approx(90.1)

    def test_percentile_out_of_range(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("h").percentile(101.0)

    def test_empty_summary(self):
        reg = MetricsRegistry()
        assert reg.histogram("h").summary() == {"count": 0, "sum": 0.0}

    def test_reservoir_bounded_but_totals_exact(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.max_samples = 10
        for v in range(1000):
            h.observe(float(v))
        summ = h.summary()
        assert summ["count"] == 1000
        assert summ["sum"] == sum(range(1000))
        assert summ["min"] == 0.0 and summ["max"] == 999.0
        # percentiles reflect only the retained (most recent) window
        assert h.percentile(0.0) >= 990.0


class TestLabelCardinality:
    def test_labelled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("x", device="a")
        reg.inc("x", device="b", host="h")
        counters = reg.snapshot()["counters"]
        assert counters["x{device=a}"] == 1.0
        assert counters["x{device=b,host=h}"] == 1.0

    def test_overflow_folds_into_single_series(self):
        reg = MetricsRegistry(max_label_sets=3)
        for i in range(10):
            reg.inc("x", device=f"d{i}")
        counters = reg.snapshot()["counters"]
        assert counters["x{overflow=true}"] == 7.0
        # the first three distinct series survived untouched
        assert sum(1 for k in counters if k.startswith("x{device=")) == 3

    def test_overflow_is_per_metric_name(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.inc("a", k="1")
        reg.inc("b", k="1")
        counters = reg.snapshot()["counters"]
        assert "a{k=1}" in counters and "b{k=1}" in counters

    def test_empty_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.inc("")


class TestSnapshot:
    def test_snapshot_is_json_compatible(self):
        reg = MetricsRegistry()
        reg.inc("c", device="a")
        reg.set_gauge("g", 0.5)
        reg.observe("h", 1.0)
        json.dumps(reg.snapshot())  # must not raise

    def test_snapshot_under_concurrency(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                reg.inc("c")
                reg.observe("h", float(i % 7))
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    snap = reg.snapshot()
                    # a snapshot is internally consistent plain data
                    json.dumps(snap)
                    assert snap["counters"].get("c", 0.0) >= 0.0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop.wait(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        snap = reg.snapshot()
        assert snap["counters"]["c"] == reg.counter("c").value
        assert snap["histograms"]["h"]["count"] == reg.histogram("h").count

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDiffMerge:
    def test_diff_isolates_one_run(self):
        reg = MetricsRegistry()
        reg.inc("c", 5)
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.inc("c", 2)
        reg.set_gauge("g", 9.0)
        reg.observe("h", 3.0)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"c": 2.0}
        assert delta["gauges"]["g"] == 9.0
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["sum"] == 3.0

    def test_diff_drops_unchanged_series(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        delta = diff_snapshots(snap, reg.snapshot())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_merge_is_inverse_of_diff_for_counters(self):
        total = {}
        merge_snapshots(total, {"counters": {"c": 2.0}, "histograms": {}})
        merge_snapshots(
            total,
            {
                "counters": {"c": 3.0, "d": 1.0},
                "histograms": {"h": {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}},
            },
        )
        merge_snapshots(
            total,
            {"histograms": {"h": {"count": 1, "sum": 9.0, "min": 9.0, "max": 9.0}}},
        )
        assert total["counters"] == {"c": 5.0, "d": 1.0}
        h = total["histograms"]["h"]
        assert h["count"] == 3 and h["sum"] == 13.0
        assert h["min"] == 1.0 and h["max"] == 9.0
        assert h["mean"] == pytest.approx(13.0 / 3)


class TestDefaultRegistry:
    def test_set_and_restore(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
            get_registry().inc("only.mine")
            assert "only.mine" not in previous.snapshot()["counters"]
        finally:
            set_registry(previous)

    def test_reset_registry_clears_default(self):
        previous = set_registry(MetricsRegistry())
        try:
            get_registry().inc("tmp")
            reset_registry()
            assert get_registry().snapshot()["counters"] == {}
        finally:
            set_registry(previous)


class TestPrometheusExport:
    def test_counter_and_gauge_families(self):
        reg = MetricsRegistry()
        reg.inc("sweep.runs", 3)
        reg.set_gauge("plbhec.block_size", 42.0, device="A.gpu0")
        text = reg.to_prometheus()
        assert "# TYPE sweep_runs counter\nsweep_runs 3.0\n" in text
        assert "# TYPE plbhec_block_size gauge" in text
        assert 'plbhec_block_size{device="A.gpu0"} 42.0' in text

    def test_histogram_becomes_summary_with_quantiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("solve.ms", float(v))
        text = reg.to_prometheus()
        assert "# TYPE solve_ms summary" in text
        assert 'solve_ms{quantile="0.5"}' in text
        assert 'solve_ms{quantile="0.9"}' in text
        assert 'solve_ms{quantile="0.99"}' in text
        assert "solve_ms_sum 5050.0" in text
        assert "solve_ms_count 100.0" in text

    def test_names_sanitized_labels_escaped(self):
        reg = MetricsRegistry()
        reg.set_gauge("weird-name.1", 1.0, path='a"b\\c')
        text = reg.to_prometheus()
        assert "weird_name_1" in text
        assert 'path="a\\"b\\\\c"' in text

    def test_snapshot_function_matches_method(self):
        from repro.obs.metrics import snapshot_to_prometheus

        reg = MetricsRegistry()
        reg.inc("x")
        assert snapshot_to_prometheus(reg.snapshot()) == reg.to_prometheus()

    def test_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_newline_and_backslash_labels_round_trip(self):
        from repro.obs.metrics import _prom_escape, _prom_unescape

        for raw in ('a\nb', 'back\\slash', 'quo"te', '\\n literal', 'mix\\"\n'):
            escaped = _prom_escape(raw)
            assert "\n" not in escaped  # stays on one exposition line
            assert _prom_unescape(escaped) == raw

    def test_escaped_labels_render_on_one_line(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0, path="a\nb\\c")
        text = reg.to_prometheus()
        (sample,) = [
            l for l in text.splitlines() if not l.startswith("#")
        ]
        assert 'path="a\\nb\\\\c"' in sample

    def test_help_line_per_family(self):
        reg = MetricsRegistry()
        reg.inc("c", 1)
        reg.set_gauge("g", 2.0)
        reg.observe("h", 3.0)
        lines = reg.to_prometheus().splitlines()
        assert "# HELP c repro counter metric c" in lines
        assert "# HELP g repro gauge metric g" in lines
        assert "# HELP h repro summary metric h" in lines
        # exactly one HELP immediately preceding each TYPE
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                family = line.split()[2]
                assert lines[i - 1].startswith(f"# HELP {family} ")

    def test_output_parses_line_by_line(self):
        """Every non-comment line is `series value` with a float value."""
        reg = MetricsRegistry()
        reg.inc("a.b", 2)
        reg.set_gauge("c", 1.5, k="v")
        reg.observe("h", 1.0)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# TYPE ", "# HELP "))
                continue
            series, value = line.rsplit(" ", 1)
            float(value)
            assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})?$", series)
