"""Tests for repro.obs.history (the append-only JSONL store)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.history import (
    DEFAULT_HISTORY_DIR,
    HISTORY_SCHEMA,
    HistoryStore,
    bench_entry,
    chaos_entry,
    fingerprint_hash,
    git_rev,
    host_fingerprint,
    run_entry,
    validate_entry,
)


def make_bench_report(laps=None, jobs=2):
    return {
        "timings_s": dict(laps or {"serial": 1.0, "parallel": 0.5}),
        "host": {"platform": "test-os", "python": "3.12.0", "cpu_count": 8},
        "meta": {
            "grid": {"app": "matmul", "sizes": [4096]},
            "jobs": jobs,
            "parallel_speedup": 2.0,
            "effective_jobs": jobs,
        },
    }


def make_run_report():
    return {
        "run_id": "run-abc",
        "config": {"app": "matmul", "size": 4096, "policy": "plb-hec"},
        "config_hash": "f" * 64,
        "makespan": 1.25,
        "solver_overhead_s": 0.01,
        "rebalances": 2,
    }


def make_scorecard(seed=0, survived=7):
    return {
        "config": {
            "apps": ["matmul"], "sizes": [2048], "machines": 2,
            "policies": ["plb-hec", "greedy"], "runs": 8, "seed": seed,
            "noise_sigma": 0.005, "max_faults": 2, "anomaly_tolerance": 0.25,
        },
        "runs": [],
        "policies": {
            "plb-hec": {
                "runs": 4, "survived": 4, "survival_rate": 1.0,
                "mean_degradation": 1.1, "max_degradation": 1.3,
                "mean_recovery_lag": 0.002, "violations": 0,
            },
        },
        "total_runs": 8,
        "survived_runs": survived,
        "total_violations": 0,
        "all_invariants_ok": True,
    }


class TestFingerprint:
    def test_fingerprint_has_required_fields(self):
        fp = host_fingerprint()
        assert set(fp) == {"platform", "python", "cpu_count"}

    def test_hash_is_stable_and_short(self):
        fp = {"platform": "x", "python": "3.12", "cpu_count": 4}
        assert fingerprint_hash(fp) == fingerprint_hash(dict(fp))
        assert len(fingerprint_hash(fp)) == 12

    def test_hash_distinguishes_hosts(self):
        a = {"platform": "x", "python": "3.12", "cpu_count": 4}
        b = {"platform": "x", "python": "3.12", "cpu_count": 8}
        assert fingerprint_hash(a) != fingerprint_hash(b)

    def test_git_rev_in_repo_or_none(self):
        rev = git_rev()
        assert rev is None or (isinstance(rev, str) and rev)

    def test_git_rev_outside_repo(self, tmp_path):
        assert git_rev(cwd=tmp_path) is None


class TestValidateEntry:
    def test_valid_bench_entry(self):
        entry = bench_entry(make_bench_report())
        assert validate_entry(entry) == []

    def test_valid_run_entry(self):
        entry = run_entry(make_run_report())
        assert validate_entry(entry) == []

    def test_missing_keys_reported(self):
        problems = validate_entry({"kind": "bench"})
        assert any("config_hash" in p for p in problems)

    def test_unknown_kind(self):
        entry = bench_entry(make_bench_report())
        entry["kind"] = "mystery"
        assert any("unknown kind" in p for p in validate_entry(entry))

    def test_negative_lap_rejected(self):
        entry = bench_entry(make_bench_report(laps={"serial": -1.0}))
        assert any("non-negative" in p for p in validate_entry(entry))

    def test_run_entry_needs_makespan(self):
        entry = run_entry(make_run_report())
        del entry["samples"]["makespan"]
        entry["samples"] = {}
        assert validate_entry(entry)


class TestEntryBuilders:
    def test_bench_entry_carries_schema_and_host(self):
        entry = bench_entry(make_bench_report())
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["kind"] == "bench"
        assert entry["host"]["platform"] == "test-os"
        assert entry["host_hash"] == fingerprint_hash(entry["host"])
        assert entry["laps"] == {"serial": 1.0, "parallel": 0.5}

    def test_bench_config_hash_covers_jobs(self):
        one = bench_entry(make_bench_report(jobs=1))
        four = bench_entry(make_bench_report(jobs=4))
        assert one["config_hash"] != four["config_hash"]

    def test_run_entry_samples(self):
        entry = run_entry(make_run_report(), wall_s=0.8)
        assert entry["kind"] == "run"
        assert entry["samples"]["makespan"] == 1.25
        assert entry["samples"]["wall_s"] == 0.8

    def test_chaos_entry_summarises_scorecard(self):
        entry = chaos_entry(make_scorecard())
        assert validate_entry(entry) == []
        assert entry["kind"] == "chaos"
        assert entry["chaos"] is True
        assert entry["summary"]["survival_rate"] == 7 / 8
        assert entry["summary"]["all_invariants_ok"] is True
        assert entry["summary"]["policies"]["plb-hec"]["violations"] == 0

    def test_chaos_config_hash_covers_seed(self):
        a = chaos_entry(make_scorecard(seed=0))
        b = chaos_entry(make_scorecard(seed=1))
        assert a["config_hash"] != b["config_hash"]

    def test_chaos_entry_needs_summary(self):
        entry = chaos_entry(make_scorecard())
        del entry["summary"]["survival_rate"]
        assert any("survival_rate" in p for p in validate_entry(entry))


class TestHistoryStore:
    def test_directory_root_uses_default_file(self, tmp_path):
        store = HistoryStore(tmp_path / "hist")
        assert store.path == tmp_path / "hist" / "history.jsonl"

    def test_jsonl_root_used_verbatim(self, tmp_path):
        store = HistoryStore(tmp_path / "baseline.jsonl")
        assert store.path == tmp_path / "baseline.jsonl"

    def test_append_and_read_back(self, tmp_path):
        store = HistoryStore(tmp_path)
        stored = store.append(bench_entry(make_bench_report()))
        assert stored["schema"] == HISTORY_SCHEMA
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["laps"]["serial"] == 1.0

    def test_append_is_append_only(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report()))
        store.append(bench_entry(make_bench_report()))
        assert len(store.path.read_text().splitlines()) == 2

    def test_append_rejects_malformed(self, tmp_path):
        store = HistoryStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.append({"kind": "bench", "config_hash": "x", "laps": {}})

    def test_entries_filter_by_kind_and_config(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report(jobs=1)))
        store.append(bench_entry(make_bench_report(jobs=2)))
        store.append(run_entry(make_run_report()))
        assert len(store.entries(kind="bench")) == 2
        assert len(store.entries(kind="run")) == 1
        target = bench_entry(make_bench_report(jobs=1))["config_hash"]
        assert len(store.entries(config_hash=target)) == 1

    def test_entries_filter_by_host(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report()))
        other = bench_entry(make_bench_report())
        other["host"] = {"platform": "other", "python": "3.11", "cpu_count": 2}
        other["host_hash"] = fingerprint_hash(other["host"])
        store.append(other)
        here = fingerprint_hash({"platform": "test-os", "python": "3.12.0", "cpu_count": 8})
        assert len(store.entries(host_hash=here)) == 1

    def test_entries_last_n(self, tmp_path):
        store = HistoryStore(tmp_path)
        for i in range(5):
            store.append(bench_entry(make_bench_report(laps={"serial": float(i + 1)})))
        tail = store.entries(last=2)
        assert [e["laps"]["serial"] for e in tail] == [4.0, 5.0]

    def test_corrupt_lines_skipped(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report()))
        with store.path.open("a") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps([1, 2, 3]) + "\n")
        store.append(bench_entry(make_bench_report()))
        assert len(store.entries()) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert HistoryStore(tmp_path / "nowhere").entries() == []

    def test_lap_samples(self, tmp_path):
        store = HistoryStore(tmp_path)
        for value in (1.0, 1.1, 1.2):
            store.append(bench_entry(make_bench_report(laps={"serial": value})))
        assert store.lap_samples("serial") == [1.0, 1.1, 1.2]
        assert store.lap_samples("missing") == []

    def test_makespan_samples(self, tmp_path):
        store = HistoryStore(tmp_path)
        entry = run_entry(make_run_report())
        store.append(entry)
        assert store.makespan_samples(entry["config_hash"]) == [1.25]

    def test_survival_samples(self, tmp_path):
        store = HistoryStore(tmp_path)
        entry = store.append(chaos_entry(make_scorecard(survived=6)))
        store.append(chaos_entry(make_scorecard(survived=8)))
        assert store.survival_samples(entry["config_hash"]) == [0.75, 1.0]

    def test_chaos_entries_never_feed_the_perf_gate(self, tmp_path):
        """Campaign laps are kind='chaos'; the gate pools kind='bench'."""
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report(laps={"serial": 1.0})))
        store.append(chaos_entry(make_scorecard()))
        assert store.lap_samples("serial") == [1.0]
        assert len(store.entries(kind="bench")) == 1
        assert len(store.entries(kind="chaos")) == 1


class TestFromEnv:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        assert HistoryStore.from_env() is None

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", ""])
    def test_explicit_off(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_HISTORY", value)
        assert HistoryStore.from_env() is None

    def test_on_uses_default_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY", "1")
        store = HistoryStore.from_env()
        assert str(store.root) == DEFAULT_HISTORY_DIR

    def test_path_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_HISTORY", str(tmp_path / "h"))
        store = HistoryStore.from_env()
        assert store.root == tmp_path / "h"


def make_profiled_report(shares=(0.3, 0.2), jobs=2):
    report = make_bench_report(jobs=jobs)
    report["meta"]["profiled"] = True
    report["meta"]["hot_functions"] = [
        {"function": f"mod.func{i}", "calls": 10, "self_s": s,
         "cum_s": s, "share": s, "phase": "fit"}
        for i, s in enumerate(shares)
    ]
    return report


class TestProfiledEntries:
    """Schema 2: the profiled flag + hot-function table."""

    def test_schema_version_is_four(self):
        # 2: profiled flag, 3: chaos kind, 4: calibration kind
        assert HISTORY_SCHEMA == 4

    def test_unprofiled_entry_has_false_flag(self):
        entry = bench_entry(make_bench_report())
        assert entry["profiled"] is False
        assert "hot_functions" not in entry

    def test_profiled_entry_round_trips(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_profiled_report()))
        (entry,) = store.entries()
        assert entry["profiled"] is True
        assert entry["hot_functions"][0]["function"] == "mod.func0"

    def test_schema1_lines_read_as_unprofiled(self, tmp_path):
        # A pre-profiler entry (schema 1, no profiled key) must still
        # load, and count as unprofiled for filtering.
        store = HistoryStore(tmp_path)
        legacy = bench_entry(make_bench_report())
        legacy["schema"] = 1
        del legacy["profiled"]
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(json.dumps(legacy) + "\n")
        entries = store.entries(profiled=False)
        assert len(entries) == 1
        assert store.entries(profiled=True) == []
        assert store.lap_samples("serial", profiled=False) == [1.0]

    def test_entries_profiled_filter(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report()))
        store.append(bench_entry(make_profiled_report()))
        assert len(store.entries()) == 2
        assert len(store.entries(profiled=False)) == 1
        assert len(store.entries(profiled=True)) == 1

    def test_validate_rejects_bad_profiled_type(self):
        entry = bench_entry(make_bench_report())
        entry["profiled"] = "yes"
        assert any("boolean" in p for p in validate_entry(entry))

    def test_validate_rejects_bad_hot_functions(self):
        entry = bench_entry(make_profiled_report())
        entry["hot_functions"] = [{"no_function_key": 1}]
        assert any("hot_functions" in p for p in validate_entry(entry))
        entry["hot_functions"] = "lots"
        assert any("must be a list" in p for p in validate_entry(entry))

    def test_hot_function_shares(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report()))  # unprofiled: skipped
        store.append(bench_entry(make_profiled_report(shares=(0.3, 0.2))))
        store.append(bench_entry(make_profiled_report(shares=(0.4, 0.1))))
        shares = store.hot_function_shares()
        assert shares == [
            {"mod.func0": 0.3, "mod.func1": 0.2},
            {"mod.func0": 0.4, "mod.func1": 0.1},
        ]

    def test_hot_function_shares_respects_filters(self, tmp_path):
        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_profiled_report(jobs=1)))
        store.append(bench_entry(make_profiled_report(jobs=2)))
        target = bench_entry(make_profiled_report(jobs=1))["config_hash"]
        assert len(store.hot_function_shares(config_hash=target)) == 1


def make_ledger_dict(mape=0.05):
    return {
        "schema": 1,
        "run_id": "run-led",
        "decisions": [
            {"id": "d0000", "trigger": "selection"},
            {"id": "d0001", "trigger": "rebalance"},
        ],
        "calibration": {
            "A.gpu0": {
                "device": "A.gpu0", "blocks": 9, "skipped": 2,
                "mape": mape, "bias": -0.01, "drift": 0.02,
                "series": [0.01, -0.03],
            },
        },
        "attribution": {"attributed": 11, "unattributed": 0},
        "triggers": {"selection": 1, "rebalance": 1},
        "fallback_stages": ["last-good"],
    }


class TestCalibrationEntries:
    def test_builder_summarises_ledger(self):
        from repro.obs.history import calibration_entry

        entry = calibration_entry(make_run_report(), make_ledger_dict())
        assert validate_entry(entry) == []
        assert entry["kind"] == "calibration"
        assert entry["calibration"] is True
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["devices"]["A.gpu0"]["mape"] == 0.05
        assert entry["devices"]["A.gpu0"]["blocks"] == 9
        assert entry["summary"]["decisions"] == 2
        assert entry["summary"]["attributed"] == 11
        assert entry["summary"]["fallback_stages"] == {"last-good": 1}

    def test_config_hash_excludes_calibration_marker(self):
        """Same config ⇒ same hash as the run entry: the kinds join."""
        from repro.obs.history import calibration_entry

        cal = calibration_entry(make_run_report(), make_ledger_dict())
        run = run_entry(make_run_report(), wall_s=1.0)
        assert cal["config_hash"] == run["config_hash"]

    def test_validate_requires_device_mape(self):
        from repro.obs.history import calibration_entry

        entry = calibration_entry(make_run_report(), make_ledger_dict())
        del entry["devices"]["A.gpu0"]["mape"]
        assert any("mape" in p for p in validate_entry(entry))

    def test_validate_rejects_empty_devices(self):
        from repro.obs.history import calibration_entry

        entry = calibration_entry(make_run_report(), make_ledger_dict())
        entry["devices"] = {}
        assert validate_entry(entry)

    def test_calibration_entries_never_feed_the_perf_gate(self, tmp_path):
        from repro.obs.history import calibration_entry

        store = HistoryStore(tmp_path)
        store.append(bench_entry(make_bench_report(laps={"serial": 1.0})))
        store.append(calibration_entry(make_run_report(), make_ledger_dict()))
        assert store.lap_samples("serial") == [1.0]
        assert len(store.entries(kind="bench")) == 1
        assert len(store.entries(kind="calibration")) == 1

    def test_fallback_stages_counted_from_list(self):
        from repro.obs.history import calibration_entry

        ledger = make_ledger_dict()
        ledger["fallback_stages"] = ["last-good", "last-good", "fair-share"]
        entry = calibration_entry(make_run_report(), ledger)
        assert entry["summary"]["fallback_stages"] == {
            "last-good": 2, "fair-share": 1,
        }
