"""Critical-path extraction & makespan attribution (repro.obs.critpath).

The synthetic traces here are hand-built so every category total and
every what-if bound has a known closed-form answer — the analyzer is
checked against arithmetic, not against itself.
"""

import json
import math

import pytest

from repro.obs.critpath import (
    ATTRIBUTION_TOLERANCE,
    CATEGORIES,
    CRITPATH_SCHEMA,
    analyze_trace,
    category_shares,
    payload_from_analysis,
    validate_critpath,
    write_critpath,
)
from repro.sim.trace import ExecutionTrace, TaskRecord


def task(worker, start, end, *, units=50, dispatch=None, transfer=0.0,
         retry=0.0, retries=0, start_unit=-1, decision=""):
    return TaskRecord(
        worker_id=worker,
        units=units,
        dispatch_time=start if dispatch is None else dispatch,
        transfer_time=transfer,
        exec_time=end - start - transfer - retry,
        start_time=start,
        end_time=end,
        start_unit=start_unit,
        retries=retries,
        retry_time=retry,
        decision=decision,
    )


def trace_of(workers, records, *, makespan=None, failures=(),
             recoveries=(), lost=()):
    tr = ExecutionTrace(workers)
    for r in records:
        tr.add_record(r)
    for t, d in failures:
        tr.record_failure(t, d)
    for t, d in recoveries:
        tr.record_recovery(t, d)
    for t, d, u, s in lost:
        tr.record_lost_block(t, d, u, start_unit=s)
    if makespan is not None:
        tr.finalize(makespan)
    return tr


def assert_exact(analysis):
    """The acceptance bar: categories tile the makespan exactly."""
    total = math.fsum(analysis["categories"].values())
    assert abs(total - analysis["makespan"]) < ATTRIBUTION_TOLERANCE
    assert validate_critpath(analysis) == []


class TestSingleDevice:
    def make(self):
        return trace_of(["a"], [
            task("a", 0.0, 1.0, units=50, start_unit=0),
            task("a", 1.0, 2.0, units=50, start_unit=50),
        ])

    def test_all_compute(self):
        analysis = analyze_trace(self.make())
        assert_exact(analysis)
        assert analysis["makespan"] == 2.0
        assert analysis["categories"]["compute"] == pytest.approx(2.0)
        assert all(
            analysis["categories"][c] == 0.0
            for c in CATEGORIES if c != "compute"
        )
        assert analysis["path_tasks"] == 2

    def test_bounds_known_answers(self):
        bounds = analyze_trace(self.make())["bounds"]
        # nothing to remove: both idealizations leave the makespan alone
        assert bounds["zero_transfer"] == pytest.approx(2.0)
        assert bounds["zero_scheduler"] == pytest.approx(2.0)
        # one fully-busy device IS the Σwork/Σspeed oracle
        assert bounds["perfect_balance"] == pytest.approx(2.0)
        # 2x faster exec on the only device halves the makespan
        assert bounds["device_speedup"]["a"] == pytest.approx(1.0)

    def test_bottleneck_is_the_device(self):
        analysis = analyze_trace(self.make())
        assert analysis["bottleneck"]["device"] == "a"
        assert analysis["bottleneck"]["share"] == pytest.approx(1.0)
        assert analysis["bottleneck"]["units"] == 100


class TestTwoEqualDevices:
    def make(self):
        # a carries 100 units over [0, 2); b finishes its 50 by t=1
        return trace_of(["a", "b"], [
            task("a", 0.0, 2.0, units=100, start_unit=0),
            task("b", 0.0, 1.0, units=50, start_unit=100),
        ])

    def test_path_sits_on_the_straggler(self):
        analysis = analyze_trace(self.make())
        assert_exact(analysis)
        assert analysis["categories"]["compute"] == pytest.approx(2.0)
        assert [n["worker"] for n in analysis["path"]
                if n["kind"] == "task"] == ["a"]
        assert analysis["bottleneck"]["device"] == "a"

    def test_perfect_balance_uses_both_rates(self):
        bounds = analyze_trace(self.make())["bounds"]
        # rates: a = 100/2 = 50 u/s, b = 50/1 = 50 u/s → 150/100 = 1.5 s
        assert bounds["perfect_balance"] == pytest.approx(1.5)
        assert bounds["perfect_balance"] <= 2.0

    def test_off_path_device_speedup_is_free(self):
        bounds = analyze_trace(self.make())["bounds"]
        # only on-path exec shrinks: b is off the path, so no change
        assert bounds["device_speedup"]["a"] == pytest.approx(1.0)
        assert bounds["device_speedup"]["b"] == pytest.approx(2.0)

    def test_speedup_factor_is_configurable(self):
        bounds = analyze_trace(self.make(), speedup_factor=4.0)["bounds"]
        assert bounds["speedup_factor"] == 4.0
        assert bounds["device_speedup"]["a"] == pytest.approx(0.5)


class TestTransferDominated:
    def make(self):
        return trace_of(["a"], [
            task("a", 0.0, 1.0, transfer=0.8, start_unit=0),
        ])

    def test_transfer_attributed(self):
        analysis = analyze_trace(self.make())
        assert_exact(analysis)
        assert analysis["categories"]["transfer"] == pytest.approx(0.8)
        assert analysis["categories"]["compute"] == pytest.approx(0.2)

    def test_zero_transfer_bound(self):
        bounds = analyze_trace(self.make())["bounds"]
        assert bounds["zero_transfer"] == pytest.approx(0.2)


class TestIdleAndSolver:
    def test_causal_gap_is_idle(self):
        tr = trace_of(["a"], [
            task("a", 0.0, 1.0, start_unit=0),
            task("a", 1.5, 2.5, start_unit=50),
        ])
        analysis = analyze_trace(tr)
        assert_exact(analysis)
        assert analysis["categories"]["idle"] == pytest.approx(0.5)
        assert analysis["categories"]["compute"] == pytest.approx(2.0)
        kinds = [n["kind"] for n in analysis["path"]]
        assert kinds == ["task", "idle", "task"]

    def test_dispatch_stall_is_solver(self):
        tr = trace_of(["a"], [
            task("a", 0.3, 1.0, dispatch=0.0, start_unit=0),
        ])
        analysis = analyze_trace(tr)
        assert_exact(analysis)
        assert analysis["categories"]["solver"] == pytest.approx(0.3)
        assert analysis["categories"]["compute"] == pytest.approx(0.7)
        assert analysis["bounds"]["zero_scheduler"] == pytest.approx(0.7)

    def test_retry_time_attributed(self):
        tr = trace_of(["a"], [
            task("a", 0.0, 1.0, transfer=0.2, retry=0.1, retries=1,
                 start_unit=0),
        ])
        analysis = analyze_trace(tr)
        assert_exact(analysis)
        assert analysis["categories"]["retries"] == pytest.approx(0.1)
        assert analysis["categories"]["transfer"] == pytest.approx(0.2)
        assert analysis["categories"]["compute"] == pytest.approx(0.7)

    def test_trailing_idle_to_finalized_makespan(self):
        tr = trace_of(["a"], [task("a", 0.0, 1.0, start_unit=0)],
                      makespan=1.5)
        analysis = analyze_trace(tr)
        assert_exact(analysis)
        assert analysis["categories"]["idle"] == pytest.approx(0.5)


class TestFaultInterrupted:
    def make(self):
        # b dies at t=1 taking units [80, 100) with it; a picks the
        # range back up at t=1.4 after b's downtime blocks the path
        return trace_of(
            ["a", "b"],
            [
                task("a", 0.0, 1.0, units=80, start_unit=0),
                task("a", 1.4, 2.0, units=20, dispatch=1.4, start_unit=80),
            ],
            failures=[(1.0, "b")],
            recoveries=[(1.4, "b")],
            lost=[(1.0, "b", 20, 80)],
        )

    def test_downtime_and_rework_attributed(self):
        analysis = analyze_trace(self.make())
        assert_exact(analysis)
        assert analysis["categories"]["compute"] == pytest.approx(1.0)
        assert analysis["categories"]["fault_recovery"] == pytest.approx(0.4)
        assert analysis["categories"]["rework"] == pytest.approx(0.6)
        assert analysis["categories"]["idle"] == 0.0

    def test_rework_flagged_on_path_node(self):
        analysis = analyze_trace(self.make())
        rework_nodes = [n for n in analysis["path"]
                        if n["kind"] == "task" and n["rework"]]
        assert len(rework_nodes) == 1
        assert rework_nodes[0]["units"] == 20

    def test_untracked_range_is_not_rework(self):
        tr = trace_of(
            ["a", "b"],
            [
                task("a", 0.0, 1.0, units=80, start_unit=0),
                task("a", 1.4, 2.0, units=20, dispatch=1.4, start_unit=-1),
            ],
            failures=[(1.0, "b")],
            recoveries=[(1.4, "b")],
            lost=[(1.0, "b", 20, -1)],
        )
        analysis = analyze_trace(tr)
        assert_exact(analysis)
        assert analysis["categories"]["rework"] == 0.0
        assert analysis["categories"]["compute"] == pytest.approx(1.6)


class TestDecisionBlame:
    def test_on_path_busy_grouped_by_decision(self):
        tr = trace_of(["a"], [
            task("a", 0.0, 1.0, decision="d0001", start_unit=0),
            task("a", 1.0, 3.0, decision="d0002", start_unit=50),
        ])
        analysis = analyze_trace(tr)
        assert analysis["decisions"] == [
            {"id": "d0002", "tasks": 1, "busy_s": pytest.approx(2.0)},
            {"id": "d0001", "tasks": 1, "busy_s": pytest.approx(1.0)},
        ]


class TestEmptyTrace:
    def test_zero_makespan_is_valid(self):
        analysis = analyze_trace(trace_of(["a"], []))
        assert analysis["makespan"] == 0.0
        assert analysis["path"] == []
        assert validate_critpath(analysis) == []
        assert category_shares(analysis) == {c: 0.0 for c in CATEGORIES}


class TestValidation:
    def good(self):
        return analyze_trace(trace_of(["a"], [task("a", 0.0, 1.0)]))

    def test_schema_mismatch_flagged(self):
        doc = self.good()
        doc["schema"] = CRITPATH_SCHEMA + 1
        assert any("schema" in p for p in validate_critpath(doc))

    def test_attribution_gap_flagged(self):
        doc = self.good()
        doc["categories"]["compute"] -= 0.5
        assert any("sum to" in p for p in validate_critpath(doc))

    def test_bound_above_makespan_flagged(self):
        doc = self.good()
        doc["bounds"]["perfect_balance"] = doc["makespan"] * 2
        assert any("exceeds the makespan" in p for p in validate_critpath(doc))

    def test_device_bound_above_makespan_flagged(self):
        doc = self.good()
        doc["bounds"]["device_speedup"]["a"] = doc["makespan"] * 2
        assert any("device_speedup" in p for p in validate_critpath(doc))

    def test_empty_path_with_makespan_flagged(self):
        doc = self.good()
        doc["path"] = []
        assert any("empty critical path" in p for p in validate_critpath(doc))

    def test_missing_key_flagged(self):
        doc = self.good()
        del doc["bounds"]
        assert any("missing key" in p for p in validate_critpath(doc))


class TestArtifact:
    def test_write_and_reload(self, tmp_path):
        analysis = analyze_trace(trace_of(["a"], [task("a", 0.0, 1.0)]))
        path = write_critpath(tmp_path / "critpath.json", analysis)
        doc = json.loads(path.read_text())
        assert validate_critpath(doc) == []
        assert doc["makespan"] == analysis["makespan"]

    def test_write_refuses_invalid(self, tmp_path):
        analysis = analyze_trace(trace_of(["a"], [task("a", 0.0, 1.0)]))
        analysis["categories"]["compute"] += 1.0
        with pytest.raises(ValueError, match="refusing to write"):
            write_critpath(tmp_path / "critpath.json", analysis)
        assert not (tmp_path / "critpath.json").exists()

    def test_payload_is_deterministic(self):
        tr = trace_of(["a", "b"], [
            task("a", 0.0, 2.0, units=100, decision="d0001", start_unit=0),
            task("b", 0.0, 1.0, units=50, start_unit=100),
        ])
        one = json.dumps(payload_from_analysis(analyze_trace(tr)),
                         sort_keys=True)
        two = json.dumps(payload_from_analysis(analyze_trace(tr)),
                         sort_keys=True)
        assert one == two
        assert "path" not in json.loads(one)  # compact form drops the path


class TestRealRun:
    """End-to-end on simulated runs: exactness must survive real traces."""

    def _run(self, small_cluster, **kwargs):
        from repro import PLBHeC, Runtime
        from repro.apps import MatMul

        app = MatMul(n=4096)
        rt = Runtime(small_cluster, app.codelet(), seed=7,
                     noise_sigma=0.02, **kwargs)
        return rt.run(PLBHeC(fixed_overhead_s=0.01),
                      app.total_units, app.default_initial_block_size())

    def test_clean_run_exact(self, small_cluster):
        analysis = analyze_trace(self._run(small_cluster).trace)
        assert_exact(analysis)
        assert analysis["categories"]["solver"] > 0.0  # charged stalls
        shares = category_shares(analysis)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_faulted_run_exact(self, small_cluster):
        from repro.runtime.sim_executor import TransientFailure

        result = self._run(
            small_cluster,
            transients=(
                TransientFailure("alpha.gpu0", time=0.05, downtime=0.03),
            ),
        )
        analysis = analyze_trace(result.trace)
        assert_exact(analysis)
        assert all(v <= analysis["makespan"] + ATTRIBUTION_TOLERANCE
                   for v in analysis["bounds"]["device_speedup"].values())
