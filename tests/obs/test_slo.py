"""Tests for repro.obs.slo (spec parsing, evaluation, alerts)."""

import json
import logging

import pytest

from repro.errors import ConfigurationError
from repro.obs.regress import detect_slo_anomalies
from repro.obs.slo import (
    DEFAULT_SLO_SPEC,
    SLO_REPORT_SCHEMA,
    SLOObjective,
    SLOSpec,
    emit_slo_alerts,
    evaluate_slo,
    load_slo_spec,
    parse_objective,
    slo_alerts,
    spec_from_dict,
    validate_slo_report,
    write_slo_report,
)
from repro.obs.timeseries import TimeSeriesStore


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def capture():
    handler = _Capture()
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.DEBUG)
    yield handler
    root.removeHandler(handler)
    root.setLevel(logging.NOTSET)


def _store(**series):
    """Build a store from name -> list-of-values (t = index)."""
    store = TimeSeriesStore()
    for name, values in series.items():
        for i, v in enumerate(values):
            store.record(name, float(i), float(v))
    return store


class TestParseObjective:
    def test_aggregate_form(self):
        obj = parse_objective("idle", "p95(device_idle_frac) < 0.2")
        assert obj.series == "device_idle_frac"
        assert obj.agg == "p95"
        assert obj.op == "<"
        assert obj.threshold == 0.2

    def test_bare_name_picks_strictest_aggregate(self):
        assert parse_objective("f", "fairness > 0.9").agg == "min"
        assert parse_objective("i", "imbalance <= 3").agg == "max"

    def test_scientific_and_negative_thresholds(self):
        assert parse_objective("x", "mean(x) >= 1e-3").threshold == 1e-3
        assert parse_objective("x", "min(x) > -2.5").threshold == -2.5

    def test_bad_expressions_rejected(self):
        for expr in (
            "p95(x)",  # no comparison
            "stddev(x) < 1",  # unknown aggregate
            "x == 1",  # unsupported operator
            "p95(x) < banana",
            "",
        ):
            with pytest.raises(ConfigurationError):
                parse_objective("bad", expr)

    def test_budget_and_severity_validation(self):
        with pytest.raises(ConfigurationError):
            parse_objective("b", "mean(x) < 1", budget=1.0)
        with pytest.raises(ConfigurationError):
            parse_objective("b", "mean(x) < 1", severity="info")
        with pytest.raises(ConfigurationError):
            parse_objective("b", "mean(x) < 1", window=0.0)

    def test_holds_respects_operator(self):
        obj = parse_objective("x", "last(x) <= 5")
        assert obj.holds(5.0) and not obj.holds(5.1)


class TestSpec:
    def test_spec_needs_objectives_and_unique_names(self):
        with pytest.raises(ConfigurationError):
            SLOSpec(name="empty", objectives=())
        obj = parse_objective("dup", "mean(x) < 1")
        with pytest.raises(ConfigurationError):
            SLOSpec(name="dups", objectives=(obj, obj))

    def test_spec_from_dict(self):
        spec = spec_from_dict(
            {
                "name": "ci",
                "description": "gate",
                "objectives": [
                    {"name": "idle", "expr": "p95(device_idle_frac) < 0.5"},
                    {"expr": "fairness > 0.8", "budget": 0.1,
                     "severity": "warning"},
                ],
            }
        )
        assert spec.name == "ci"
        assert [o.name for o in spec.objectives] == ["idle", "objective-1"]
        assert spec.objectives[1].budget == 0.1
        assert spec.objectives[1].severity == "warning"

    def test_spec_from_dict_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            spec_from_dict([])
        with pytest.raises(ConfigurationError):
            spec_from_dict({"objectives": []})
        with pytest.raises(ConfigurationError):
            spec_from_dict({"objectives": [{"name": "no-expr"}]})

    def test_load_slo_spec_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {"name": "file", "objectives": [{"name": "g",
                 "expr": "max(goodput_units_per_s) > 0"}]}
            )
        )
        spec = load_slo_spec(path)
        assert spec.name == "file"
        assert spec.objectives[0].series == "goodput_units_per_s"

    def test_load_slo_spec_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_slo_spec(path)

    def test_default_spec_is_valid(self):
        assert isinstance(DEFAULT_SLO_SPEC, SLOSpec)
        assert {o.name for o in DEFAULT_SLO_SPEC.objectives} == {
            "device-idle", "fairness", "completion", "goodput",
        }


class TestEvaluate:
    def test_aggregate_pass_and_fail(self):
        store = _store(fairness=[0.9, 0.95, 1.0])
        spec = SLOSpec(
            name="t",
            objectives=(
                parse_objective("ok", "mean(fairness) > 0.9"),
                parse_objective("bad", "min(fairness) > 0.92"),
            ),
        )
        report = evaluate_slo(spec, store, run_id="run-1")
        assert report["schema"] == SLO_REPORT_SCHEMA
        assert report["run_id"] == "run-1"
        by_name = {r["name"]: r for r in report["objectives"]}
        assert by_name["ok"]["verdict"] == "pass"
        assert by_name["bad"]["verdict"] == "fail"
        assert by_name["bad"]["first_violation_t"] == 0.0
        assert report["ok"] is False and report["violations"] == 1

    def test_missing_series_is_no_data_not_fail(self):
        spec = SLOSpec(
            name="t", objectives=(parse_objective("m", "mean(absent) < 1"),)
        )
        report = evaluate_slo(spec, _store(fairness=[1.0]))
        (row,) = report["objectives"]
        assert row["verdict"] == "no-data"
        assert row["measured"] is None
        assert report["ok"] is True  # surfaced, not failed
        assert report["no_data"] == 1

    def test_error_budget_tolerates_fraction(self):
        # 2 of 10 samples violate `< 5`; a 30% budget absorbs that,
        # a 10% budget does not.
        values = [1, 1, 9, 1, 1, 1, 9, 1, 1, 1]
        loose = SLOSpec(
            name="t",
            objectives=(parse_objective("b", "mean(x) < 5", budget=0.3),),
        )
        tight = SLOSpec(
            name="t",
            objectives=(parse_objective("b", "mean(x) < 5", budget=0.1),),
        )
        assert evaluate_slo(loose, _store(x=values))["ok"] is True
        report = evaluate_slo(tight, _store(x=values))
        (row,) = report["objectives"]
        assert row["verdict"] == "fail"
        assert row["violating_samples"] == 2
        assert row["violating_fraction"] == pytest.approx(0.2)
        assert row["burn_rate"] is not None

    def test_burn_rate_reflects_trailing_window(self):
        # all violations land in the trailing half: the window burn
        # rate must exceed the whole-run violating fraction / budget
        values = [1] * 10 + [9] * 10
        spec = SLOSpec(
            name="t",
            objectives=(
                parse_objective("b", "mean(x) < 5", budget=0.25, window=5.0),
            ),
        )
        (row,) = evaluate_slo(spec, _store(x=values))["objectives"]
        assert row["verdict"] == "fail"
        assert row["window_violating_fraction"] == 1.0
        assert row["burn_rate"] == pytest.approx(4.0)  # 100% / 25%

    def test_labelled_series_merge_across_devices(self):
        store = TimeSeriesStore()
        store.record("device_util", 0.0, 0.2, device="a")
        store.record("device_util", 0.0, 0.8, device="b")
        spec = SLOSpec(
            name="t",
            objectives=(parse_objective("u", "mean(device_util) >= 0.5"),),
        )
        (row,) = evaluate_slo(spec, store)["objectives"]
        assert row["samples"] == 2
        assert row["measured"] == pytest.approx(0.5)
        assert row["verdict"] == "pass"

    def test_report_validates(self):
        report = evaluate_slo(DEFAULT_SLO_SPEC, _store(fairness=[0.9]))
        assert validate_slo_report(report) == []
        json.dumps(report)  # JSON-compatible


class TestReportFile:
    def test_write_slo_report_round_trip(self, tmp_path):
        report = evaluate_slo(DEFAULT_SLO_SPEC, _store(fairness=[0.9]))
        path = write_slo_report(tmp_path / "slo_report.json", report)
        assert json.loads(path.read_text()) == report

    def test_write_rejects_invalid_report(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_slo_report(tmp_path / "r.json", {"schema": 99})

    def test_validator_catches_inconsistencies(self):
        report = evaluate_slo(
            SLOSpec(
                name="t",
                objectives=(parse_objective("f", "min(fairness) > 2"),),
            ),
            _store(fairness=[1.0]),
        )
        assert validate_slo_report(report) == []
        report["ok"] = True  # contradicts the failing row
        assert any("'ok' is true" in p for p in validate_slo_report(report))
        report["violations"] = 5
        assert any("violations" in p for p in validate_slo_report(report))


class TestAlerts:
    def _failing_report(self):
        spec = SLOSpec(
            name="t",
            objectives=(
                parse_objective("f", "min(fairness) > 0.99",
                                severity="warning"),
                parse_objective("ok", "max(fairness) > 0"),
            ),
        )
        return evaluate_slo(spec, _store(fairness=[0.5, 1.0]))

    def test_slo_alerts_only_failures(self):
        (alert,) = slo_alerts(self._failing_report())
        assert alert["name"] == "slo:f"
        assert alert["severity"] == "warning"
        assert alert["t"] == 0.0  # first violating sample
        assert "violated" in alert["message"]

    def test_emit_slo_alerts_logs_instants(self, capture):
        alerts = emit_slo_alerts(self._failing_report())
        assert len(alerts) == 1
        payloads = [r.repro_event for r in capture.records]
        (event,) = [p for p in payloads if p["name"] == "alert.slo.f"]
        assert event["severity"] == "warning"
        assert event["virtual_t"] == 0.0

    def test_passing_report_emits_nothing(self, capture):
        report = evaluate_slo(
            SLOSpec(
                name="t",
                objectives=(parse_objective("ok", "max(fairness) > 0"),),
            ),
            _store(fairness=[1.0]),
        )
        assert emit_slo_alerts(report) == []
        assert not any(
            r.repro_event["name"].startswith("alert.slo")
            for r in capture.records
        )


class TestDetectSloAnomalies:
    def test_fail_rows_become_findings(self, capture):
        spec = SLOSpec(
            name="t",
            objectives=(
                parse_objective("f", "min(fairness) > 0.99"),
                parse_objective("b", "mean(x) < 5", budget=0.05,
                                severity="warning"),
            ),
        )
        report = evaluate_slo(spec, _store(fairness=[0.5], x=[9, 9]))
        findings = detect_slo_anomalies(report)
        assert {a.name for a in findings} == {"slo.f", "slo.b"}
        by_name = {a.name: a for a in findings}
        assert by_name["slo.f"].severity == "critical"
        assert by_name["slo.b"].severity == "warning"
        assert "error budget" in by_name["slo.b"].message
        emitted = [
            r.repro_event["name"]
            for r in capture.records
            if r.repro_event["name"].startswith("anomaly.slo.")
        ]
        assert sorted(emitted) == ["anomaly.slo.b", "anomaly.slo.f"]

    def test_no_data_rows_skipped_and_emit_false_silent(self, capture):
        spec = SLOSpec(
            name="t", objectives=(parse_objective("m", "mean(absent) < 1"),)
        )
        report = evaluate_slo(spec, _store(fairness=[1.0]))
        assert detect_slo_anomalies(report, emit=False) == []
        assert not capture.records
