"""Tests for repro.cluster.network."""

import pytest

from repro.cluster.device import CPUSpec, Device, DeviceKind, GPUArch, GPUSpec
from repro.cluster.network import NetworkSpec, PCIeSpec, TransferModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return TransferModel(
        network=NetworkSpec(bandwidth_gbs=1.0, latency_s=1e-4),
        pcie=PCIeSpec(bandwidth_gbs=10.0, latency_s=1e-5),
        master_machine="A",
        host_memcpy_gbs=100.0,
    )


def make_device(machine, kind):
    if kind is DeviceKind.CPU:
        return Device(
            f"{machine}.cpu", kind, machine,
            CPUSpec(model="c", cores=2, clock_ghz=2.0),
        )
    return Device(
        f"{machine}.gpu0", kind, machine,
        GPUSpec(
            model="g", cores=64, sms=2, clock_ghz=1.0,
            mem_bandwidth_gbs=10.0, mem_gb=1.0, arch=GPUArch.KEPLER,
        ),
    )


class TestSpecs:
    def test_network_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(bandwidth_gbs=0.0)
        with pytest.raises(ConfigurationError):
            NetworkSpec(latency_s=-1.0)

    def test_pcie_validation(self):
        with pytest.raises(ConfigurationError):
            PCIeSpec(bandwidth_gbs=-1.0)


class TestTransferModel:
    def test_local_cpu_pays_only_memcpy(self, model):
        d = make_device("A", DeviceKind.CPU)
        t = model.transfer_time(d, 1e9)
        assert t == pytest.approx(1e9 / 100e9)

    def test_local_gpu_pays_pcie(self, model):
        d = make_device("A", DeviceKind.GPU)
        t = model.transfer_time(d, 1e9)
        assert t == pytest.approx(1e-5 + 1e9 / 10e9)

    def test_remote_cpu_pays_network(self, model):
        d = make_device("B", DeviceKind.CPU)
        t = model.transfer_time(d, 1e9)
        assert t == pytest.approx(1e-4 + 1e9 / 1e9 + 1e9 / 100e9)

    def test_remote_gpu_pays_both(self, model):
        d = make_device("B", DeviceKind.GPU)
        t = model.transfer_time(d, 1e9)
        expected = 1e-4 + 1e9 / 1e9 + 1e-5 + 1e9 / 10e9
        assert t == pytest.approx(expected)

    def test_zero_bytes_still_pays_latency(self, model):
        d = make_device("B", DeviceKind.GPU)
        assert model.transfer_time(d, 0.0) == pytest.approx(1e-4 + 1e-5)

    def test_negative_bytes_rejected(self, model):
        d = make_device("A", DeviceKind.CPU)
        with pytest.raises(ValueError):
            model.transfer_time(d, -1.0)

    def test_transfer_time_is_affine_in_bytes(self, model):
        # the paper's G[x] = a1*x + a2 must be able to represent it exactly
        d = make_device("B", DeviceKind.GPU)
        t0 = model.transfer_time(d, 0.0)
        t1 = model.transfer_time(d, 1e6)
        t2 = model.transfer_time(d, 2e6)
        assert (t2 - t1) == pytest.approx(t1 - t0)

    def test_bandwidth_to_serial_composition(self, model):
        d = make_device("B", DeviceKind.GPU)
        bw = model.bandwidth_to(d)
        expected = 1.0 / (1 / 1e9 + 1 / 10e9)
        assert bw == pytest.approx(expected)

    def test_latency_to(self, model):
        assert model.latency_to(make_device("A", DeviceKind.CPU)) == 0.0
        assert model.latency_to(make_device("B", DeviceKind.GPU)) == pytest.approx(
            1e-4 + 1e-5
        )

    def test_remote_slower_than_local(self, model):
        local = model.transfer_time(make_device("A", DeviceKind.GPU), 1e6)
        remote = model.transfer_time(make_device("B", DeviceKind.GPU), 1e6)
        assert remote > local
