"""Tests for repro.cluster.topology."""

import pytest

from repro.cluster.device import CPUSpec, GPUArch, GPUSpec
from repro.cluster.machine import Machine
from repro.cluster.topology import Cluster
from repro.errors import ConfigurationError


def machine(name, gpus=1):
    gpu = GPUSpec(
        model="g", cores=128, sms=4, clock_ghz=1.0,
        mem_bandwidth_gbs=50.0, mem_gb=1.0, arch=GPUArch.KEPLER,
    )
    return Machine(
        name=name,
        cpu=CPUSpec(model="c", cores=2, clock_ghz=2.0),
        gpus=(gpu,) * gpus,
    )


class TestCluster:
    def test_master_is_first(self):
        c = Cluster(machines=(machine("x"), machine("y")))
        assert c.master == "x"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(machines=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            Cluster(machines=(machine("x"), machine("x")))

    def test_devices_deterministic_order(self):
        c = Cluster(machines=(machine("x", gpus=2), machine("y")))
        ids = [d.device_id for d in c.devices()]
        assert ids == ["x.cpu", "x.gpu0", "x.gpu1", "y.cpu", "y.gpu0"]

    def test_max_gpus_per_machine(self):
        c = Cluster(machines=(machine("x", gpus=2),), max_gpus_per_machine=1)
        ids = [d.device_id for d in c.devices()]
        assert ids == ["x.cpu", "x.gpu0"]

    def test_no_cpus(self):
        c = Cluster(machines=(machine("x"),), use_cpus=False)
        assert all(d.is_gpu for d in c.devices())

    def test_no_devices_rejected(self):
        c = Cluster(
            machines=(machine("x", gpus=0),), use_cpus=False
        )
        with pytest.raises(ConfigurationError, match="no processing units"):
            c.devices()

    def test_device_lookup(self):
        c = Cluster(machines=(machine("x"),))
        assert c.device("x.gpu0").is_gpu
        with pytest.raises(ConfigurationError):
            c.device("nope")

    def test_machine_lookup(self):
        c = Cluster(machines=(machine("x"), machine("y")))
        assert c.machine("y").name == "y"
        with pytest.raises(ConfigurationError):
            c.machine("z")

    def test_subset_preserves_order_and_settings(self):
        c = Cluster(
            machines=(machine("x"), machine("y"), machine("z")),
            max_gpus_per_machine=1,
        )
        sub = c.subset(["z", "x"])
        assert [m.name for m in sub.machines] == ["z", "x"]
        assert sub.master == "z"
        assert sub.max_gpus_per_machine == 1

    def test_transfer_model_uses_master(self):
        c = Cluster(machines=(machine("x"), machine("y")))
        tm = c.transfer_model
        assert tm.master_machine == "x"

    def test_len(self):
        assert len(Cluster(machines=(machine("x"), machine("y")))) == 2

    def test_total_peak(self):
        c = Cluster(machines=(machine("x"),))
        expected = sum(d.peak_gflops for d in c.devices())
        assert c.total_peak_gflops == pytest.approx(expected)

    def test_negative_max_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(machines=(machine("x"),), max_gpus_per_machine=-1)
