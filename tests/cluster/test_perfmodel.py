"""Tests for repro.cluster.perfmodel (the ground-truth time model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    GroundTruth,
    KernelCharacteristics,
    paper_cluster,
)
from repro.cluster.perfmodel import (
    REF_CPU_THREADS,
    REF_GPU_CAPACITY,
    DevicePerformance,
)
from repro.errors import ConfigurationError


def kernel(**kw):
    defaults = dict(
        name="k",
        flops_per_unit=1e7,
        bytes_in_per_unit=1e3,
        gpu_half_units=100.0,
        cpu_half_units=8.0,
    )
    defaults.update(kw)
    return KernelCharacteristics(**defaults)


class TestKernelCharacteristics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            kernel(flops_per_unit=0.0)
        with pytest.raises(ConfigurationError):
            kernel(name="")
        with pytest.raises(ConfigurationError):
            kernel(gpu_min_occupancy=0.0)
        with pytest.raises(ConfigurationError):
            kernel(gpu_min_occupancy=1.0)
        with pytest.raises(ConfigurationError):
            kernel(gpu_half_scaling="warps")

    def test_bytes_per_unit(self):
        k = kernel(bytes_in_per_unit=10.0, bytes_out_per_unit=4.0)
        assert k.bytes_per_unit == 14.0


class TestDevicePerformance:
    @pytest.fixture
    def cluster(self):
        return paper_cluster(2)

    def test_zero_units_zero_time(self, cluster):
        perf = DevicePerformance(cluster.device("A.gpu0"), kernel())
        assert perf.exec_time(0) == 0.0

    def test_negative_units_rejected(self, cluster):
        perf = DevicePerformance(cluster.device("A.cpu"), kernel())
        with pytest.raises(ValueError):
            perf.exec_time(-1)

    def test_monotone_increasing(self, cluster):
        for did in ("A.cpu", "A.gpu0", "B.gpu0"):
            perf = DevicePerformance(cluster.device(did), kernel())
            times = [perf.exec_time(u) for u in [1, 2, 5, 10, 100, 1000, 10000]]
            assert times == sorted(times)
            assert all(t > 0 for t in times)

    def test_affine_above_floor(self, cluster):
        # T(u) = launch + c*(u + h) once occupancy exceeds the floor
        perf = DevicePerformance(cluster.device("A.gpu0"), kernel())
        h = perf.half_units
        u1, u2, u3 = 10 * h, 20 * h, 30 * h
        t1, t2, t3 = (perf.exec_time(u) for u in (u1, u2, u3))
        assert (t3 - t2) == pytest.approx(t2 - t1, rel=1e-9)

    def test_small_blocks_inefficient(self, cluster):
        perf = DevicePerformance(cluster.device("A.gpu0"), kernel())
        h = perf.half_units
        assert perf.efficiency(h) == pytest.approx(0.5)
        assert perf.efficiency(h / 100) <= kernel().gpu_min_occupancy + 1e-12
        assert perf.efficiency(100 * h) > 0.98

    def test_efficiency_floor_applies(self, cluster):
        k = kernel(gpu_min_occupancy=0.25)
        perf = DevicePerformance(cluster.device("A.gpu0"), k)
        assert perf.efficiency(1e-3) == pytest.approx(0.25)

    def test_cpu_floor_is_one_core(self, cluster):
        perf = DevicePerformance(cluster.device("A.cpu"), kernel())
        assert perf.occupancy_floor == pytest.approx(
            1.0 / cluster.device("A.cpu").parallel_capacity
        )

    def test_half_units_scale_with_capacity_threads(self, cluster):
        k = kernel(gpu_half_scaling="threads")
        a = DevicePerformance(cluster.device("A.gpu0"), k)
        expected = k.gpu_half_units * (
            cluster.device("A.gpu0").parallel_capacity / REF_GPU_CAPACITY
        )
        assert a.half_units == pytest.approx(expected)

    def test_half_units_scale_with_cores(self, cluster):
        k = kernel(gpu_half_scaling="cores")
        b = DevicePerformance(cluster.device("B.gpu0"), k)
        assert b.half_units == pytest.approx(k.gpu_half_units * 240 / 2496)

    def test_cpu_half_scales_with_threads(self, cluster):
        perf = DevicePerformance(cluster.device("B.cpu"), kernel())
        threads = cluster.device("B.cpu").parallel_capacity
        assert perf.half_units == pytest.approx(
            kernel().cpu_half_units * threads / REF_CPU_THREADS
        )

    def test_cache_penalty_only_on_cpu(self, cluster):
        k = kernel(cpu_cache_gamma=0.5, bytes_in_per_unit=1e6)
        gpu_perf = DevicePerformance(cluster.device("A.gpu0"), k)
        cpu_perf = DevicePerformance(cluster.device("A.cpu"), k)
        assert gpu_perf.cache_penalty(1e9) == 1.0
        assert cpu_perf.cache_penalty(1e9) > 1.4

    def test_cache_penalty_saturates_at_gamma(self, cluster):
        k = kernel(cpu_cache_gamma=0.5, bytes_in_per_unit=1e6)
        perf = DevicePerformance(cluster.device("A.cpu"), k)
        assert perf.cache_penalty(1e12) <= 1.5

    def test_rate_gflops_saturates(self, cluster):
        perf = DevicePerformance(cluster.device("A.gpu0"), kernel())
        small = perf.rate_gflops(perf.half_units / 10)
        big = perf.rate_gflops(perf.half_units * 100)
        assert big > small
        assert big <= perf.sustained_gflops * 1.001

    @given(st.floats(1.0, 1e5))
    @settings(max_examples=30, deadline=None)
    def test_exec_time_positive_property(self, units):
        cluster = paper_cluster(1)
        perf = DevicePerformance(cluster.device("A.gpu0"), kernel())
        assert perf.exec_time(units) > 0.0


class TestGroundTruth:
    @pytest.fixture
    def gt(self):
        return GroundTruth(paper_cluster(2), kernel())

    def test_unknown_device_rejected(self, gt):
        with pytest.raises(ConfigurationError):
            gt.performance("Z.cpu")

    def test_total_time_is_sum(self, gt):
        total = gt.total_time("A.gpu0", 100)
        assert total == pytest.approx(
            gt.exec_time("A.gpu0", 100) + gt.transfer_time("A.gpu0", 100)
        )

    def test_transfer_time_remote_larger(self, gt):
        assert gt.transfer_time("B.gpu0", 1000) > gt.transfer_time("A.gpu0", 1000)

    def test_ideal_partition_sums_to_total(self, gt):
        part = gt.ideal_partition(10_000)
        assert sum(part.values()) == pytest.approx(10_000, rel=1e-6)
        assert all(v >= 0 for v in part.values())

    def test_ideal_partition_equalises_times(self, gt):
        part = gt.ideal_partition(50_000)
        times = [
            gt.total_time(d, u) for d, u in part.items() if u > 1.0
        ]
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.01

    def test_ideal_partition_favors_faster_devices(self, gt):
        part = gt.ideal_partition(50_000)
        assert part["A.gpu0"] > part["A.cpu"]
        assert part["A.gpu0"] > part["B.gpu0"]

    def test_ideal_partition_zero_total(self, gt):
        part = gt.ideal_partition(0)
        assert all(v == 0.0 for v in part.values())
