"""Tests for repro.cluster.presets (the Table I encodings)."""

import pytest

from repro.cluster.device import GPUArch
from repro.cluster.presets import (
    machine_a,
    machine_b,
    machine_c,
    machine_d,
    paper_cluster,
    paper_machines,
)
from repro.errors import ConfigurationError


class TestTable1Specs:
    def test_machine_a(self):
        m = machine_a()
        assert m.cpu.cores == 10
        assert m.cpu.clock_ghz == 3.0
        assert m.cpu.cache_mb == 25.0
        assert m.cpu.ram_gb == 256.0
        assert len(m.gpus) == 1
        assert m.gpus[0].cores == 2496
        assert m.gpus[0].sms == 13
        assert m.gpus[0].arch is GPUArch.KEPLER

    def test_machine_b(self):
        m = machine_b()
        assert m.cpu.cores == 4
        assert m.cpu.clock_ghz == 2.67
        # dual-GPU board: two processors
        assert len(m.gpus) == 2
        assert m.gpus[0].cores == 240
        assert m.gpus[0].arch is GPUArch.TESLA

    def test_machine_c(self):
        m = machine_c()
        assert m.cpu.cores == 6
        assert m.cpu.clock_ghz == 3.4
        assert len(m.gpus) == 2
        assert m.gpus[0].cores == 1536
        assert m.gpus[0].sms == 8

    def test_machine_d(self):
        m = machine_d()
        assert m.cpu.cores == 6
        assert m.gpus[0].cores == 2688
        assert m.gpus[0].sms == 14
        assert m.gpus[0].mem_bandwidth_gbs == 223.8

    def test_paper_machines_order(self):
        assert [m.name for m in paper_machines()] == ["A", "B", "C", "D"]

    def test_gpu_heterogeneity_present(self):
        # the evaluation depends on a wide spread of GPU capabilities
        peaks = [m.gpus[0].peak_gflops for m in paper_machines()]
        assert max(peaks) / min(peaks) > 4.0


class TestCloudCluster:
    def test_deterministic_per_seed(self):
        from repro.cluster.presets import cloud_cluster

        a = cloud_cluster(6, seed=3)
        b = cloud_cluster(6, seed=3)
        assert [m.cpu.model for m in a.machines] == [
            m.cpu.model for m in b.machines
        ]
        assert [m.cpu.clock_ghz for m in a.machines] == [
            m.cpu.clock_ghz for m in b.machines
        ]

    def test_seeds_differ(self):
        from repro.cluster.presets import cloud_cluster

        fleets = {
            tuple(m.cpu.clock_ghz for m in cloud_cluster(6, seed=s).machines)
            for s in range(5)
        }
        assert len(fleets) > 1

    def test_always_has_a_gpu(self):
        from repro.cluster.presets import cloud_cluster

        for seed in range(10):
            c = cloud_cluster(3, seed=seed)
            assert any(d.is_gpu for d in c.devices()), seed

    def test_minimum_size(self):
        from repro.cluster.presets import cloud_cluster

        with pytest.raises(ConfigurationError):
            cloud_cluster(1)

    def test_clock_jitter_bounded(self):
        from repro.cluster.presets import cloud_cluster

        for seed in range(5):
            for m in cloud_cluster(8, seed=seed).machines:
                assert 2.0 < m.cpu.clock_ghz < 3.0

    def test_slower_network_than_paper_cluster(self):
        from repro.cluster.presets import cloud_cluster

        cloud = cloud_cluster(4)
        lab = paper_cluster(4)
        assert cloud.network.bandwidth_gbs < lab.network.bandwidth_gbs


class TestPaperCluster:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_scenarios(self, n):
        c = paper_cluster(n)
        assert len(c) == n
        assert c.master == "A"
        # default: one GPU per machine -> 2 units per machine
        assert len(c.devices()) == 2 * n

    def test_all_gpus_exposed(self):
        c = paper_cluster(4, max_gpus_per_machine=None)
        # A:1, B:2, C:2, D:1 GPUs plus 4 CPUs
        assert len(c.devices()) == 4 + 6

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            paper_cluster(0)
        with pytest.raises(ConfigurationError):
            paper_cluster(5)

    def test_no_cpus_option(self):
        c = paper_cluster(2, use_cpus=False)
        assert all(d.is_gpu for d in c.devices())
