"""Tests for repro.cluster.machine."""

import pytest

from repro.cluster.device import CPUSpec, DeviceKind, GPUArch, GPUSpec
from repro.cluster.machine import Machine
from repro.errors import ConfigurationError


def make_machine(name="m", num_gpus=2):
    gpu = GPUSpec(
        model="g", cores=512, sms=8, clock_ghz=1.0,
        mem_bandwidth_gbs=100.0, mem_gb=2.0, arch=GPUArch.KEPLER,
    )
    return Machine(
        name=name,
        cpu=CPUSpec(model="c", cores=4, clock_ghz=2.0),
        gpus=(gpu,) * num_gpus,
    )


class TestMachine:
    def test_devices_cpu_plus_gpus(self):
        devices = make_machine().devices()
        assert [d.device_id for d in devices] == ["m.cpu", "m.gpu0", "m.gpu1"]
        assert devices[0].kind is DeviceKind.CPU
        assert all(d.machine_name == "m" for d in devices)

    def test_devices_without_cpu(self):
        devices = make_machine().devices(use_cpu=False)
        assert all(d.is_gpu for d in devices)
        assert len(devices) == 2

    def test_max_gpus(self):
        devices = make_machine().devices(max_gpus=1)
        assert [d.device_id for d in devices] == ["m.cpu", "m.gpu0"]

    def test_max_gpus_zero(self):
        devices = make_machine().devices(max_gpus=0)
        assert [d.device_id for d in devices] == ["m.cpu"]

    def test_no_gpus(self):
        m = make_machine(num_gpus=0)
        assert len(m.devices()) == 1

    def test_name_with_dot_rejected(self):
        with pytest.raises(ConfigurationError):
            make_machine(name="a.b")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_machine(name="")

    def test_bad_cpu_type(self):
        with pytest.raises(ConfigurationError):
            Machine(name="m", cpu="not-a-cpu")  # type: ignore[arg-type]

    def test_bad_gpu_type(self):
        with pytest.raises(ConfigurationError):
            Machine(
                name="m",
                cpu=CPUSpec(model="c", cores=1, clock_ghz=1.0),
                gpus=("nope",),  # type: ignore[arg-type]
            )

    def test_total_peak(self):
        m = make_machine()
        expected = m.cpu.peak_gflops + 2 * m.gpus[0].peak_gflops
        assert m.total_peak_gflops == pytest.approx(expected)

    def test_gpus_normalised_to_tuple(self):
        gpu = GPUSpec(
            model="g", cores=64, sms=2, clock_ghz=1.0,
            mem_bandwidth_gbs=10.0, mem_gb=1.0, arch=GPUArch.TESLA,
        )
        m = Machine(
            name="m",
            cpu=CPUSpec(model="c", cores=1, clock_ghz=1.0),
            gpus=[gpu],  # type: ignore[arg-type]
        )
        assert isinstance(m.gpus, tuple)
