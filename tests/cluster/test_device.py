"""Tests for repro.cluster.device."""

import pytest

from repro.cluster.device import CPUSpec, Device, DeviceKind, GPUArch, GPUSpec
from repro.errors import ConfigurationError


def cpu(**kw):
    defaults = dict(model="c", cores=4, clock_ghz=2.0)
    defaults.update(kw)
    return CPUSpec(**defaults)


def gpu(**kw):
    defaults = dict(
        model="g", cores=512, sms=8, clock_ghz=1.0,
        mem_bandwidth_gbs=100.0, mem_gb=2.0, arch=GPUArch.KEPLER,
    )
    defaults.update(kw)
    return GPUSpec(**defaults)


class TestCPUSpec:
    def test_peak_gflops(self):
        spec = cpu(cores=4, clock_ghz=2.0, flops_per_cycle=8.0)
        assert spec.peak_gflops == pytest.approx(64.0)

    def test_threads(self):
        assert cpu(cores=4, threads_per_core=2).threads == 8

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            cpu(cores=0)

    def test_invalid_clock(self):
        with pytest.raises(ConfigurationError):
            cpu(clock_ghz=-1.0)

    def test_invalid_efficiency(self):
        with pytest.raises(ConfigurationError):
            cpu(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            cpu(efficiency=1.0)


class TestGPUSpec:
    def test_peak_gflops(self):
        spec = gpu(cores=512, clock_ghz=1.0, flops_per_cycle=2.0)
        assert spec.peak_gflops == pytest.approx(1024.0)

    def test_max_resident_threads(self):
        assert gpu(sms=8).max_resident_threads == 8 * 2048

    def test_arch_type_checked(self):
        with pytest.raises(ConfigurationError):
            gpu(arch="kepler")  # type: ignore[arg-type]

    def test_invalid_sms(self):
        with pytest.raises(ConfigurationError):
            gpu(sms=0)


class TestGPUArch:
    def test_efficiency_ordering(self):
        # newer architectures sustain a larger fraction of peak
        effs = [
            GPUArch.TESLA.sustained_efficiency,
            GPUArch.FERMI.sustained_efficiency,
            GPUArch.KEPLER.sustained_efficiency,
            GPUArch.MAXWELL.sustained_efficiency,
        ]
        assert effs == sorted(effs)
        assert all(0 < e < 1 for e in effs)


class TestDevice:
    def test_cpu_device(self):
        d = Device("m.cpu", DeviceKind.CPU, "m", cpu())
        assert not d.is_gpu
        assert d.parallel_capacity == cpu().threads
        assert d.sustained_efficiency == cpu().efficiency

    def test_gpu_device(self):
        d = Device("m.gpu0", DeviceKind.GPU, "m", gpu())
        assert d.is_gpu
        assert d.parallel_capacity == gpu().max_resident_threads
        assert d.sustained_efficiency == GPUArch.KEPLER.sustained_efficiency

    def test_kind_spec_mismatch(self):
        with pytest.raises(ConfigurationError):
            Device("m.cpu", DeviceKind.CPU, "m", gpu())
        with pytest.raises(ConfigurationError):
            Device("m.gpu0", DeviceKind.GPU, "m", cpu())

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Device("", DeviceKind.CPU, "m", cpu())

    def test_str_is_id(self):
        d = Device("m.cpu", DeviceKind.CPU, "m", cpu())
        assert str(d) == "m.cpu"

    def test_model_property(self):
        d = Device("m.cpu", DeviceKind.CPU, "m", cpu(model="Xeon"))
        assert d.model == "Xeon"
